(* Tests for the CPU resource and cost-model calibration. *)

let test_cpu_fcfs () =
  let eng = Vsim.Engine.create () in
  let cpu = Vhw.Cpu.create eng ~model:Vhw.Cost_model.sun_8mhz ~name:"cpu" in
  let log = ref [] in
  Vhw.Cpu.charge_k cpu 100 (fun () -> log := ("a", Vsim.Engine.now eng) :: !log);
  Vhw.Cpu.charge_k cpu 50 (fun () -> log := ("b", Vsim.Engine.now eng) :: !log);
  Vsim.Engine.run eng;
  Alcotest.(check (list (pair string int)))
    "charges serialize FCFS"
    [ ("a", 100); ("b", 150) ]
    (List.rev !log);
  Alcotest.(check int) "busy accounted" 150 (Vhw.Cpu.busy_ns cpu)

let test_cpu_idle_gap () =
  let eng = Vsim.Engine.create () in
  let cpu = Vhw.Cpu.create eng ~model:Vhw.Cost_model.sun_8mhz ~name:"cpu" in
  let done_at = ref 0 in
  ignore
    (Vsim.Engine.after eng 1000 (fun () ->
         Vhw.Cpu.charge_k cpu 100 (fun () -> done_at := Vsim.Engine.now eng)));
  Vsim.Engine.run eng;
  Alcotest.(check int) "starts when idle at now" 1100 !done_at;
  Alcotest.(check int) "busy only the charge" 100 (Vhw.Cpu.busy_ns cpu)

let test_cpu_utilization () =
  let eng = Vsim.Engine.create () in
  let cpu = Vhw.Cpu.create eng ~model:Vhw.Cost_model.sun_8mhz ~name:"cpu" in
  let mark = Vhw.Cpu.mark cpu in
  Vhw.Cpu.charge_k cpu 400 ignore;
  ignore (Vsim.Engine.after eng 1000 ignore);
  Vsim.Engine.run eng;
  Alcotest.(check (float 1e-9))
    "40% busy" 0.4
    (Vhw.Cpu.utilization_since cpu mark)

let test_cpu_blocking_charge () =
  let eng = Vsim.Engine.create () in
  let cpu = Vhw.Cpu.create eng ~model:Vhw.Cost_model.sun_8mhz ~name:"cpu" in
  let t = ref 0 in
  let (_ : Vsim.Proc.t) =
    Vsim.Proc.spawn eng (fun () ->
        Vhw.Cpu.charge cpu 250;
        Vhw.Cpu.charge cpu 250;
        t := Vsim.Engine.now eng)
  in
  Vsim.Engine.run eng;
  Alcotest.(check int) "sequential charges" 500 !t

let test_calibration_pinned () =
  (* These are the constants everything else is calibrated against; a
     change here invalidates EXPERIMENTS.md. *)
  let m8 = Vhw.Cost_model.sun_8mhz and m10 = Vhw.Cost_model.sun_10mhz in
  Alcotest.(check int) "8MHz local S-R-R is 1.00 ms" 1_000_000
    (Vhw.Cost_model.local_srr_ns m8);
  Util.check_ms ~tolerance:0.05 "10MHz local S-R-R" 0.77
    (Vhw.Cost_model.local_srr_ns m10);
  Alcotest.(check int) "8MHz GetTime" 70_000 m8.Vhw.Cost_model.syscall_ns;
  Alcotest.(check int) "10MHz GetTime" 60_000 m10.Vhw.Cost_model.syscall_ns;
  (* Local MoveTo of 1024 bytes: 1.26 / 0.95 ms. *)
  Util.check_ms ~tolerance:0.01 "8MHz local MoveTo 1KB" 1.26
    (m8.Vhw.Cost_model.move_setup_ns
    + (1024 * m8.Vhw.Cost_model.mem_copy_ns_per_byte));
  Util.check_ms ~tolerance:0.01 "10MHz local MoveTo 1KB" 0.95
    (m10.Vhw.Cost_model.move_setup_ns
    + (1024 * m10.Vhw.Cost_model.mem_copy_ns_per_byte))

let test_penalty_formula () =
  (* The paper: P(n) = .0064n + .390 ms (8 MHz); .0054n + .251 (10 MHz).
     Our decomposition: 2 NIC copies + wire time + fixed packet costs +
     medium latency must reproduce the slope and intercept. *)
  let check model ~slope ~intercept =
    let m = model in
    let wire = Vnet.Medium.byte_time_ns Vnet.Medium.config_3mb in
    let got_slope =
      float_of_int ((2 * m.Vhw.Cost_model.nic_copy_ns_per_byte) + wire) /. 1e6
    in
    let got_intercept =
      float_of_int
        (m.Vhw.Cost_model.pkt_send_setup_ns
        + m.Vhw.Cost_model.pkt_recv_handling_ns
        + Vnet.Medium.config_3mb.Vnet.Medium.latency_ns)
      /. 1e6
    in
    if Float.abs (got_slope -. slope) > 0.0002 then
      Alcotest.failf "%s slope: %.5f vs %.5f" m.Vhw.Cost_model.name got_slope
        slope;
    if Float.abs (got_intercept -. intercept) > 0.01 then
      Alcotest.failf "%s intercept: %.4f vs %.4f" m.Vhw.Cost_model.name
        got_intercept intercept
  in
  check Vhw.Cost_model.sun_8mhz ~slope:0.0064 ~intercept:0.390;
  check Vhw.Cost_model.sun_10mhz ~slope:0.0054 ~intercept:0.251

let test_scale () =
  let m = Vhw.Cost_model.scale Vhw.Cost_model.sun_8mhz ~mhz:16 in
  Alcotest.(check int) "halved syscall" 35_000 m.Vhw.Cost_model.syscall_ns;
  Alcotest.(check int) "mhz" 16 m.Vhw.Cost_model.mhz;
  Alcotest.check_raises "zero mhz rejected"
    (Invalid_argument "Cost_model.scale: mhz must be positive") (fun () ->
      ignore (Vhw.Cost_model.scale Vhw.Cost_model.sun_8mhz ~mhz:0))

let suite =
  [
    Alcotest.test_case "cpu FCFS" `Quick test_cpu_fcfs;
    Alcotest.test_case "cpu idle gap" `Quick test_cpu_idle_gap;
    Alcotest.test_case "cpu utilization" `Quick test_cpu_utilization;
    Alcotest.test_case "cpu blocking charge" `Quick test_cpu_blocking_charge;
    Alcotest.test_case "calibration pinned" `Quick test_calibration_pinned;
    Alcotest.test_case "penalty formula" `Quick test_penalty_formula;
    Alcotest.test_case "cost model scale" `Quick test_scale;
  ]
