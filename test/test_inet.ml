(* The internetwork: store-and-forward gateways bridging segments. *)

module K = Vkernel.Kernel
module Msg = Vkernel.Msg
module Topology = Vworkload.Topology
module Gateway = Vnet.Gateway

let two_segment ?seed ?kernel_config ?gateway_config ~h1 ~h2 () =
  Topology.create ?seed ?kernel_config ?gateway_config
    ~segments:
      [
        { Topology.medium_config = Vnet.Medium.config_3mb; seg_hosts = h1 };
        { Topology.medium_config = Vnet.Medium.config_10mb; seg_hosts = h2 };
      ]
    ()

let kernel_of tp i = (Topology.host tp i).Vworkload.Testbed.kernel

let run_as_process (tp : Topology.t) ~host f =
  let k = kernel_of tp host in
  let completed = ref false in
  let (_ : Vkernel.Pid.t) =
    K.spawn k ~name:"test-main" (fun pid ->
        f pid;
        completed := true)
  in
  Topology.run tp;
  if not !completed then Alcotest.fail "test process did not run to completion"

let start_echo_server (tp : Topology.t) ~host =
  let k = kernel_of tp host in
  K.spawn k ~name:"echo" (fun _ ->
      let msg = Msg.create () in
      let rec loop () =
        let src = K.receive k msg in
        Msg.set_u8 msg 4 ((Msg.get_u8 msg 4 + 1) land 0xFF);
        (match K.reply k msg src with
        | K.Ok -> ()
        | st -> Alcotest.failf "echo reply failed: %s" (K.status_to_string st));
        loop ()
      in
      loop ())

let test_cross_segment_srr () =
  let tp = two_segment ~h1:1 ~h2:1 () in
  let server = start_echo_server tp ~host:2 in
  let k1 = kernel_of tp 1 in
  run_as_process tp ~host:1 (fun _ ->
      let msg = Msg.create () in
      Msg.set_u8 msg 4 41;
      Alcotest.check
        (Alcotest.testable K.pp_status ( = ))
        "cross-segment send ok" K.Ok (K.send k1 msg server);
      Alcotest.(check int) "echoed across the gateway" 42 (Msg.get_u8 msg 4));
  let s1 = K.stats k1 in
  Alcotest.(check int) "no retransmissions on a clean internetwork" 0
    s1.K.retransmissions;
  let gs = Gateway.stats tp.Topology.gateway in
  Alcotest.(check bool) "request and reply were forwarded" true
    (gs.Gateway.forwarded >= 2)

let test_cross_segment_getpid () =
  let tp = two_segment ~h1:1 ~h2:1 () in
  let k2 = kernel_of tp 2 in
  let registered = ref Vkernel.Pid.nil in
  let (_ : Vkernel.Pid.t) =
    K.spawn k2 ~name:"svc" (fun pid ->
        K.set_pid k2 ~logical_id:7 pid K.Any;
        registered := pid;
        let msg = Msg.create () in
        let src = K.receive k2 msg in
        ignore (K.reply k2 msg src))
  in
  let k1 = kernel_of tp 1 in
  run_as_process tp ~host:1 (fun _ ->
      match K.get_pid k1 ~logical_id:7 K.Any with
      | None -> Alcotest.fail "GetPid did not cross the gateway"
      | Some pid ->
          Alcotest.(check bool) "resolved the remote registration" true
            (Vkernel.Pid.equal pid !registered);
          let msg = Msg.create () in
          ignore (K.send k1 msg pid));
  let gs = Gateway.stats tp.Topology.gateway in
  Alcotest.(check bool) "the GetPid broadcast was re-broadcast" true
    (gs.Gateway.rebroadcast >= 1);
  (* The gateway hears its own re-broadcast on the far segment and must
     suppress it rather than bounce it back. *)
  Alcotest.(check bool) "duplicate suppression engaged" true
    (gs.Gateway.suppressed >= 1)

let test_queue_bound () =
  let gateway_config =
    { Gateway.default_config with
      Gateway.queue_capacity = 1;
      fixed_ns = Vsim.Time.ms 10;
      per_byte_ns = 0;
    }
  in
  let tp = two_segment ~gateway_config ~h1:1 ~h2:1 () in
  let m0 = Topology.medium tp 0 in
  let sent = ref 0 in
  Topology.run_proc tp ~name:"flood" (fun () ->
      for i = 1 to 10 do
        let payload = Bytes.make 32 (Char.chr i) in
        Vnet.Medium.transmit m0
          ~on_sent:(fun () -> incr sent)
          (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:Vnet.Frame.ethertype_raw
             payload)
      done);
  Alcotest.(check int) "all frames left segment 0" 10 !sent;
  let gs = Gateway.stats tp.Topology.gateway in
  (* [received] also counts the gateway hearing its own forwarded frames
     on segment 1 (promiscuous tap), so it is at least ten. *)
  Alcotest.(check bool) "received all ten" true (gs.Gateway.received >= 10);
  Alcotest.(check bool) "bounded queue dropped the overflow" true
    (gs.Gateway.queue_drops >= 7);
  Alcotest.(check int) "drop accounting is conserved" 10
    (gs.Gateway.forwarded + gs.Gateway.queue_drops + gs.Gateway.down_drops)

let test_gateway_crash_restart () =
  let tp = two_segment ~h1:1 ~h2:1 () in
  let gw = tp.Topology.gateway in
  let eng = tp.Topology.eng in
  let m0 = Topology.medium tp 0 in
  let received = ref 0 in
  let m1 = Topology.medium tp 1 in
  (* A raw listener on segment 1 counting what gets through.  Address 9
     is routed to segment 1 so the gateway forwards to it. *)
  ignore
    (Vnet.Medium.attach m1 ~addr:9 ~rx:(fun _ -> incr received));
  Gateway.add_route gw ~host:9 ~segment:1;
  let k_test = Vsim.Eventq.Kind.intern "test.inet" in
  let send_at t_ns i =
    ignore
      (Vsim.Engine.at eng ~kind:k_test t_ns (fun () ->
           Vnet.Medium.transmit m0
             (Vnet.Frame.make ~src:1 ~dst:9
                ~ethertype:Vnet.Frame.ethertype_raw
                (Bytes.make 16 (Char.chr i)))))
  in
  send_at (Vsim.Time.ms 1) 1;
  ignore (Vsim.Engine.at eng ~kind:k_test (Vsim.Time.ms 5) (fun () -> Gateway.crash gw));
  send_at (Vsim.Time.ms 6) 2;
  send_at (Vsim.Time.ms 7) 3;
  ignore (Vsim.Engine.at eng ~kind:k_test (Vsim.Time.ms 10) (fun () -> Gateway.restart gw));
  send_at (Vsim.Time.ms 11) 4;
  Topology.run tp;
  Alcotest.(check int) "frames before the crash and after restart arrive" 2
    !received;
  let gs = Gateway.stats gw in
  Alcotest.(check int) "frames heard while down are dropped and counted" 2
    gs.Gateway.down_drops

(* Satellite regression: each GetPid target has its own RTT estimator, so
   a burst of fast local lookups must not starve the first lookup of a
   service across a slow gateway hop into spurious retransmission. *)
let test_getpid_estimator_per_logical_id () =
  let kernel_config =
    { K.default_config with K.rto_mode = K.Adaptive }
  in
  let gateway_config =
    { Gateway.default_config with Gateway.fixed_ns = Vsim.Time.ms 1 }
  in
  let tp =
    Topology.create ~kernel_config ~gateway_config
      ~segments:
        [
          { Topology.medium_config = Vnet.Medium.config_10mb; seg_hosts = 2 };
          { Topology.medium_config = Vnet.Medium.config_3mb; seg_hosts = 1 };
        ]
      ()
  in
  let lid_near = 11 and lid_far = 12 in
  let serve k lid =
    let (_ : Vkernel.Pid.t) =
      K.spawn k ~name:"svc" (fun pid -> K.set_pid k ~logical_id:lid pid K.Any)
    in
    ()
  in
  serve (kernel_of tp 2) lid_near;
  serve (kernel_of tp 3) lid_far;
  let k1 = kernel_of tp 1 in
  run_as_process tp ~host:1 (fun _ ->
      (* Many same-segment lookups: the near estimator converges on a
         sub-millisecond round trip. *)
      for _ = 1 to 12 do
        (match K.get_pid k1 ~logical_id:lid_near K.Any with
        | Some _ -> ()
        | None -> Alcotest.fail "near GetPid failed");
        K.forget_pid k1 ~logical_id:lid_near
      done;
      (* Let the gateway drain the queued near re-broadcasts so the far
         lookup measures the path, not the backlog. *)
      Vsim.Proc.sleep (Vsim.Time.ms 50);
      let before = (K.stats k1).K.retransmissions in
      (match K.get_pid k1 ~logical_id:lid_far K.Any with
      | Some _ -> ()
      | None -> Alcotest.fail "far GetPid failed");
      let after = (K.stats k1).K.retransmissions in
      (* With the old shared broadcast estimator the fast local samples
         set a timeout well under the cross-gateway round trip and this
         lookup retransmitted spuriously. *)
      Alcotest.(check int) "first far lookup needs no retransmission" 0
        (after - before))

let suite =
  [
    Alcotest.test_case "cross-segment send-receive-reply" `Quick
      test_cross_segment_srr;
    Alcotest.test_case "GetPid crosses the gateway (scoped broadcast)" `Quick
      test_cross_segment_getpid;
    Alcotest.test_case "bounded forwarding queue drops and accounts" `Quick
      test_queue_bound;
    Alcotest.test_case "gateway crash/restart" `Quick
      test_gateway_crash_restart;
    Alcotest.test_case "GetPid estimator is per logical id" `Quick
      test_getpid_estimator_per_logical_id;
  ]
