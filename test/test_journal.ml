(* The write-ahead journal: crash-at-every-record-boundary recovery,
   replay idempotence, and allocation unwind when an operation fails
   midway. *)

let bs = Vfs.Fs.block_size

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fs error: %s" (Vfs.Fs.error_to_string e)

let blocks = 256
let jblocks = 32
let file_blocks = 4
let old_image = Bytes.init (file_blocks * bs) Vworkload.Testbed.pattern_byte

let new_image =
  Bytes.init (file_blocks * bs) (fun i ->
      Vworkload.Testbed.pattern_byte (9000 + i))

(* One instrumented run: build a journaled fs holding "data" = old_image,
   then overwrite the whole file in a single (journaled, hence single-
   transaction) write, capturing a media snapshot after every completed
   disk write.  Snapshot [k] is exactly what a host crash between disk
   writes [k] and [k+1] leaves on the platter — every journal-record
   boundary (descriptor, after-image, commit, checkpoint, retire) shows
   up as one snapshot. *)
let boundary_snapshots () =
  let eng = Vsim.Engine.create () in
  let disk =
    Vfs.Disk.create eng ~latency:(Vfs.Disk.Fixed 0) ~blocks ~block_size:bs ()
  in
  let snaps = ref [] in
  let (_ : Vsim.Proc.t) =
    Vsim.Proc.spawn eng (fun () ->
        Vfs.Fs.format disk ~journal_blocks:jblocks ~ninodes:16 ();
        let fs = get (Vfs.Fs.mount disk) in
        let inum = get (Vfs.Fs.create fs "data") in
        get (Vfs.Fs.write fs ~inum ~pos:0 old_image);
        (* Separate the op's disk writes in time so the monitor below
           can snapshot at every single completion. *)
        Vfs.Disk.set_latency disk (Vfs.Disk.Fixed 1000);
        let base = Vfs.Disk.writes disk in
        let op_done = ref false in
        snaps := [ Vfs.Disk.snapshot disk ];
        let (_ : Vsim.Proc.t) =
          Vsim.Proc.spawn eng ~name:"boundary-monitor" (fun () ->
              let seen = ref 0 in
              while not !op_done do
                Vsim.Proc.sleep 100;
                let w = Vfs.Disk.writes disk - base in
                if w > !seen then begin
                  (* 1 us per write vs 100 ns polls: no boundary can
                     slip past unobserved. *)
                  Alcotest.(check int) "one boundary per poll" (!seen + 1) w;
                  seen := w;
                  snaps := Vfs.Disk.snapshot disk :: !snaps
                end
              done)
        in
        get (Vfs.Fs.write fs ~inum ~pos:0 new_image);
        op_done := true)
  in
  Vsim.Engine.run eng;
  List.rev !snaps

(* Mount a fresh disk restored from [snap] and hand (fs, file content)
   to [f]; mounting runs journal replay. *)
let with_recovered snap f =
  let eng = Vsim.Engine.create () in
  let disk =
    Vfs.Disk.create eng ~latency:(Vfs.Disk.Fixed 0) ~blocks ~block_size:bs ()
  in
  Vfs.Disk.restore disk snap;
  let ran = ref false in
  let (_ : Vsim.Proc.t) =
    Vsim.Proc.spawn eng (fun () ->
        let fs = get (Vfs.Fs.mount disk) in
        let inum =
          match Vfs.Fs.lookup fs "data" with
          | Some i -> i
          | None -> Alcotest.fail "file vanished after recovery"
        in
        let content =
          get (Vfs.Fs.read fs ~inum ~pos:0 ~len:(file_blocks * bs))
        in
        f fs content;
        ran := true)
  in
  Vsim.Engine.run eng;
  Alcotest.(check bool) "recovery check ran" true !ran

let test_crash_every_boundary () =
  let snaps = boundary_snapshots () in
  (* A 4-block overwrite journals at least: descriptor + images + commit
     + checkpoints + retire. *)
  Alcotest.(check bool) "enough boundaries covered" true
    (List.length snaps >= 8);
  List.iteri
    (fun k snap ->
      with_recovered snap (fun fs content ->
          Alcotest.(check (list string))
            (Printf.sprintf "fsck clean at boundary %d" k)
            [] (Vfs.Fs.check fs);
          let all_old = Bytes.equal content old_image in
          let all_new = Bytes.equal content new_image in
          if not (all_old || all_new) then
            Alcotest.failf "boundary %d: torn file after recovery" k))
    snaps;
  (* The last boundary is after the final disk write: the transaction
     committed and checkpointed, so recovery must surface the new
     image. *)
  with_recovered
    (List.nth snaps (List.length snaps - 1))
    (fun _ content ->
      Alcotest.(check bool) "completed write survives" true
        (Bytes.equal content new_image))

let test_replay_idempotent () =
  let snaps = boundary_snapshots () in
  List.iteri
    (fun k snap ->
      with_recovered snap (fun fs content1 ->
          (* Replay again on the already-recovered image: the journal
             was retired, so nothing may change. *)
          Vfs.Fs.recover fs;
          let inum = Option.get (Vfs.Fs.lookup fs "data") in
          let content2 =
            get (Vfs.Fs.read fs ~inum ~pos:0 ~len:(file_blocks * bs))
          in
          Alcotest.(check bool)
            (Printf.sprintf "twice = once at boundary %d" k)
            true
            (Bytes.equal content1 content2);
          Alcotest.(check (list string)) "still consistent" []
            (Vfs.Fs.check fs)))
    snaps

(* Regression: a write that fails midway (No_space after some blocks
   were already allocated) must unwind its allocations — bitmap, inode
   and indirect table — instead of leaking them.  Covers both the
   explicit unwind (unjournaled) and transaction abort (journaled). *)
let no_space_unwind journal_blocks () =
  let eng = Vsim.Engine.create () in
  let disk =
    Vfs.Disk.create eng ~latency:(Vfs.Disk.Fixed 0) ~blocks:64 ~block_size:bs
      ()
  in
  let ran = ref false in
  let (_ : Vsim.Proc.t) =
    Vsim.Proc.spawn eng (fun () ->
        Vfs.Fs.format disk ~journal_blocks ~ninodes:16 ();
        let fs = get (Vfs.Fs.mount disk) in
        let keep = get (Vfs.Fs.create fs "keep") in
        get (Vfs.Fs.write fs ~inum:keep ~pos:0 (Bytes.make bs 'k'));
        let b = get (Vfs.Fs.create fs "b") in
        (match Vfs.Fs.write fs ~inum:b ~pos:0 (Bytes.make 40000 'x') with
        | Error Vfs.Fs.No_space -> ()
        | Ok () -> Alcotest.fail "oversized write accepted"
        | Error e ->
            Alcotest.failf "wrong error: %s" (Vfs.Fs.error_to_string e));
        Alcotest.(check (list string)) "no leaked allocations" []
          (Vfs.Fs.check fs);
        Alcotest.(check int) "failed write left no bytes" 0
          (get (Vfs.Fs.size fs ~inum:b));
        (* The space really is reusable: a fitting write must succeed. *)
        get (Vfs.Fs.write fs ~inum:b ~pos:0 (Bytes.make (8 * bs) 'y'));
        ran := true)
  in
  Vsim.Engine.run eng;
  Alcotest.(check bool) "unwind check ran" true !ran

let suite =
  [
    Alcotest.test_case "crash at every journal boundary" `Quick
      test_crash_every_boundary;
    Alcotest.test_case "replay idempotent" `Quick test_replay_idempotent;
    Alcotest.test_case "no-space unwind (unjournaled)" `Quick
      (no_space_unwind 0);
    Alcotest.test_case "no-space unwind (journaled)" `Quick
      (no_space_unwind 16);
  ]
