(* Local IPC semantics: the Thoth model on one workstation. *)

module K = Vkernel.Kernel
module Msg = Vkernel.Msg

let kernel_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.kernel

let test_send_receive_reply () =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let server = Util.start_echo_server tb ~host:1 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      Msg.set_u8 msg 4 7;
      Alcotest.check Util.status "send ok" K.Ok (K.send k msg server);
      Alcotest.(check int) "reply overwrote message" 8 (Msg.get_u8 msg 4))

let test_send_nonexistent () =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      let ghost = Vkernel.Pid.make ~host:1 ~local:999 in
      Alcotest.check Util.status "nonexistent" K.Nonexistent
        (K.send k msg ghost))

let test_fcfs_queueing () =
  (* Two clients send before the server ever receives; messages must be
     delivered first-come-first-served. *)
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let order = ref [] in
  let server =
    K.spawn k ~name:"slow-server" (fun _ ->
        Vsim.Proc.sleep (Vsim.Time.ms 50);
        let msg = Msg.create () in
        for _ = 1 to 2 do
          let src = K.receive k msg in
          order := Msg.get_u8 msg 4 :: !order;
          ignore (K.reply k msg src)
        done)
  in
  let spawn_client tag delay =
    ignore
      (K.spawn k ~name:"client" (fun _ ->
           Vsim.Proc.sleep delay;
           let msg = Msg.create () in
           Msg.set_u8 msg 4 tag;
           ignore (K.send k msg server)))
  in
  spawn_client 1 (Vsim.Time.ms 1);
  spawn_client 2 (Vsim.Time.ms 2);
  Vworkload.Testbed.run tb;
  Alcotest.(check (list int)) "FCFS" [ 1; 2 ] (List.rev !order)

let test_reply_without_receive () =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let idle = K.spawn k ~name:"idle" (fun _ -> Vsim.Proc.sleep (Vsim.Time.sec 1)) in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      Alcotest.check Util.status "reply to non-sender refused" K.No_permission
        (K.reply k msg idle))

let test_local_timing_8mhz () =
  let tb = Util.testbed ~cpu_model:Vhw.Cost_model.sun_8mhz ~hosts:1 () in
  let k = kernel_of tb 1 in
  let server = Util.start_echo_server tb ~host:1 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      ignore (K.send k msg server);
      let n = 20 in
      let t0 = Vsim.Engine.now (K.engine k) in
      for _ = 1 to n do
        ignore (K.send k msg server)
      done;
      let per_op = (Vsim.Engine.now (K.engine k) - t0) / n in
      (* Table 5-1: local Send-Receive-Reply is 1.00 ms at 8 MHz. *)
      Util.check_ms ~tolerance:0.02 "local S-R-R" 1.00 per_op)

let test_gettime () =
  let tb = Util.testbed ~cpu_model:Vhw.Cost_model.sun_8mhz ~hosts:1 () in
  let k = kernel_of tb 1 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let t0 = Vsim.Engine.now (K.engine k) in
      let reported = K.get_time k in
      Alcotest.(check bool) "monotone, includes charge" true
        (reported >= t0 + 70_000);
      Util.check_ms ~tolerance:0.001 "GetTime cost" 0.07
        (Vsim.Engine.now (K.engine k) - t0))

let test_local_move_with_grant () =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let mover_ready = ref None in
  let mover =
    K.spawn k ~name:"mover" (fun pid ->
        let mem = K.memory k pid in
        let msg = Msg.create () in
        let src = K.receive k msg in
        (* The partner granted read/write on [0, 8192). *)
        Util.fill_pattern mem ~pos:0 ~len:1024;
        Alcotest.check Util.status "move_to ok" K.Ok
          (K.move_to k ~dst_pid:src ~dst:4096 ~src:0 ~count:1024);
        Alcotest.check Util.status "move_from ok" K.Ok
          (K.move_from k ~src_pid:src ~dst:8192 ~src:4096 ~count:1024);
        Util.check_pattern mem ~pos:8192 ~len:1024 ~name:"roundtrip";
        (* Out-of-grant ranges are refused. *)
        Alcotest.check Util.status "beyond grant" K.No_permission
          (K.move_to k ~dst_pid:src ~dst:8192 ~src:0 ~count:1024);
        Alcotest.check Util.status "bad local address" K.Bad_address
          (K.move_to k ~dst_pid:src ~dst:0 ~src:(-4) ~count:1024);
        ignore (K.reply k msg src);
        mover_ready := Some ())
  in
  Util.run_as_process tb ~host:1 (fun pid ->
      let mem = K.memory k pid in
      Vkernel.Mem.fill mem ~pos:4096 ~len:1024 'z';
      (* The pattern lands at 4096 in *our* space; pre-check content to
         ensure move_to really wrote it. *)
      let msg = Msg.create () in
      Msg.set_segment msg Msg.Read_write ~ptr:0 ~len:8192;
      Alcotest.check Util.status "send" K.Ok (K.send k msg mover);
      Util.check_pattern mem ~pos:4096 ~len:1024 ~name:"move_to wrote");
  Alcotest.(check bool) "mover finished" true (!mover_ready <> None)

let test_move_without_grant () =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let server =
    K.spawn k ~name:"server" (fun _ ->
        let msg = Msg.create () in
        let src = K.receive k msg in
        (* No segment in the message: all moves must be refused. *)
        Alcotest.check Util.status "no grant" K.No_permission
          (K.move_to k ~dst_pid:src ~dst:0 ~src:0 ~count:16);
        ignore (K.reply k msg src))
  in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      Alcotest.check Util.status "send" K.Ok (K.send k msg server))

let test_read_only_grant_refuses_write () =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let server =
    K.spawn k ~name:"server" (fun _ ->
        let msg = Msg.create () in
        let src = K.receive k msg in
        Alcotest.check Util.status "write into r/o grant" K.No_permission
          (K.move_to k ~dst_pid:src ~dst:0 ~src:0 ~count:16);
        Alcotest.check Util.status "read from r/o grant ok" K.Ok
          (K.move_from k ~src_pid:src ~dst:0 ~src:0 ~count:16);
        ignore (K.reply k msg src))
  in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      Msg.set_segment msg Msg.Read_only ~ptr:0 ~len:1024;
      Alcotest.check Util.status "send" K.Ok (K.send k msg server))

let test_grant_cleared_after_reply () =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let partner = ref Vkernel.Pid.nil in
  let server =
    K.spawn k ~name:"server" (fun _ ->
        let msg = Msg.create () in
        let src = K.receive k msg in
        partner := src;
        ignore (K.reply k msg src);
        (* After the reply the grant is gone and the sender is no longer
           awaiting us. *)
        Alcotest.check Util.status "stale move refused" K.No_permission
          (K.move_to k ~dst_pid:src ~dst:0 ~src:0 ~count:16))
  in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      Msg.set_segment msg Msg.Read_write ~ptr:0 ~len:1024;
      Alcotest.check Util.status "send" K.Ok (K.send k msg server);
      Vsim.Proc.sleep (Vsim.Time.ms 10))

let test_destroy_fails_senders () =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let victim = K.spawn k ~name:"victim" (fun _ -> Vsim.Proc.sleep (Vsim.Time.sec 10)) in
  let sent = ref None in
  let (_ : Vkernel.Pid.t) =
    K.spawn k ~name:"sender" (fun _ ->
        let msg = Msg.create () in
        sent := Some (K.send k msg victim))
  in
  let (_ : Vkernel.Pid.t) =
    K.spawn k ~name:"killer" (fun _ ->
        Vsim.Proc.sleep (Vsim.Time.ms 5);
        K.destroy k victim)
  in
  Vworkload.Testbed.run tb;
  Alcotest.(check (option Util.status)) "sender failed with Nonexistent"
    (Some K.Nonexistent) !sent;
  Alcotest.(check bool) "victim gone" false (K.alive k victim)

let test_spawn_metadata () =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let pid = K.spawn k ~name:"worker" ~mem_size:4096 (fun _ -> ()) in
  Alcotest.(check (option string)) "name" (Some "worker") (K.process_name k pid);
  Alcotest.(check int) "mem size" 4096 (Vkernel.Mem.size (K.memory k pid));
  Alcotest.(check int) "host field" 1 (Vkernel.Pid.host pid);
  Vworkload.Testbed.run tb

let suite =
  [
    Alcotest.test_case "send-receive-reply" `Quick test_send_receive_reply;
    Alcotest.test_case "send to nonexistent" `Quick test_send_nonexistent;
    Alcotest.test_case "FCFS queueing" `Quick test_fcfs_queueing;
    Alcotest.test_case "reply without receive" `Quick test_reply_without_receive;
    Alcotest.test_case "local S-R-R timing (8MHz)" `Quick test_local_timing_8mhz;
    Alcotest.test_case "GetTime" `Quick test_gettime;
    Alcotest.test_case "local move with grant" `Quick test_local_move_with_grant;
    Alcotest.test_case "move without grant" `Quick test_move_without_grant;
    Alcotest.test_case "read-only grant" `Quick test_read_only_grant_refuses_write;
    Alcotest.test_case "grant cleared by reply" `Quick test_grant_cleared_after_reply;
    Alcotest.test_case "destroy fails senders" `Quick test_destroy_fails_senders;
    Alcotest.test_case "spawn metadata" `Quick test_spawn_metadata;
  ]
