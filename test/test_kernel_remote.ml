(* Remote IPC: the interkernel protocol between workstations. *)

module K = Vkernel.Kernel
module Msg = Vkernel.Msg

let kernel_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.kernel
let cpu_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.cpu

let test_remote_exchange () =
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 in
  let server = Util.start_echo_server tb ~host:2 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      Msg.set_u8 msg 4 41;
      Alcotest.check Util.status "remote send ok" K.Ok (K.send k1 msg server);
      Alcotest.(check int) "echoed" 42 (Msg.get_u8 msg 4));
  let s1 = K.stats k1 in
  Alcotest.(check int) "client counted a remote send" 1
    s1.K.sends_remote;
  Alcotest.(check int) "no retransmissions on a clean net" 0
    s1.K.retransmissions

let test_remote_timing_8mhz () =
  let tb =
    Util.testbed ~cpu_model:Vhw.Cost_model.sun_8mhz ~hosts:2 ()
  in
  let k1 = kernel_of tb 1 in
  let server = Util.start_echo_server tb ~host:2 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      ignore (K.send k1 msg server);
      let n = 20 in
      let c1 = cpu_of tb 1 and c2 = cpu_of tb 2 in
      let m1 = Vhw.Cpu.mark c1 and m2 = Vhw.Cpu.mark c2 in
      let t0 = Vsim.Engine.now (K.engine k1) in
      for _ = 1 to n do
        ignore (K.send k1 msg server)
      done;
      let per_op = (Vsim.Engine.now (K.engine k1) - t0) / n in
      (* Table 5-1: remote S-R-R 3.18 ms; client 1.79; server 2.30. *)
      Util.check_ms ~tolerance:0.1 "remote S-R-R" 3.18 per_op;
      Util.check_ms ~tolerance:0.1 "client CPU" 1.79
        (Vhw.Cpu.busy_since c1 m1 / n);
      Util.check_ms ~tolerance:0.15 "server CPU" 2.30
        (Vhw.Cpu.busy_since c2 m2 / n))

let test_concurrency_overlap () =
  (* Client + server processor time must exceed elapsed time: the paper's
     evidence of overlap between the workstations. *)
  let tb = Util.testbed ~cpu_model:Vhw.Cost_model.sun_8mhz ~hosts:2 () in
  let k1 = kernel_of tb 1 in
  let server = Util.start_echo_server tb ~host:2 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      ignore (K.send k1 msg server);
      let c1 = cpu_of tb 1 and c2 = cpu_of tb 2 in
      let m1 = Vhw.Cpu.mark c1 and m2 = Vhw.Cpu.mark c2 in
      let t0 = Vsim.Engine.now (K.engine k1) in
      let n = 20 in
      for _ = 1 to n do
        ignore (K.send k1 msg server)
      done;
      let elapsed = Vsim.Engine.now (K.engine k1) - t0 in
      let total_cpu = Vhw.Cpu.busy_since c1 m1 + Vhw.Cpu.busy_since c2 m2 in
      Alcotest.(check bool) "client+server CPU > elapsed" true
        (total_cpu > elapsed))

let test_piggybacked_segment () =
  (* A Send with a read segment delivers its head to a
     ReceiveWithSegment. *)
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let seen = ref (-1) in
  let server =
    K.spawn k2 ~name:"server" (fun pid ->
        let mem = K.memory k2 pid in
        let msg = Msg.create () in
        let src, count = K.receive_with_segment k2 msg ~segptr:0 ~segsize:512 in
        seen := count;
        Util.check_pattern mem ~pos:0 ~len:count ~name:"piggyback data";
        ignore (K.reply k2 msg src))
  in
  ignore server;
  Util.run_as_process tb ~host:1 (fun pid ->
      let mem = K.memory k1 pid in
      (* Pattern at offset 0, so receiver-side check uses the same
         pattern indices. *)
      Util.fill_pattern mem ~pos:0 ~len:256;
      let msg = Msg.create () in
      Msg.set_segment msg Msg.Read_only ~ptr:0 ~len:256;
      Alcotest.check Util.status "send" K.Ok (K.send k1 msg server));
  Alcotest.(check int) "segment bytes received" 256 !seen

let test_reply_with_segment_remote () =
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let server =
    K.spawn k2 ~name:"server" (fun pid ->
        let mem = K.memory k2 pid in
        let msg = Msg.create () in
        let src = K.receive k2 msg in
        let dptr =
          match Msg.writable_segment msg with
          | Some (p, _) -> p
          | None -> Alcotest.fail "no write grant"
        in
        Util.fill_pattern mem ~pos:0 ~len:512;
        Msg.clear_segment msg;
        Alcotest.check Util.status "reply+segment" K.Ok
          (K.reply_with_segment k2 msg src ~destptr:dptr ~segptr:0
             ~segsize:512))
  in
  Util.run_as_process tb ~host:1 (fun pid ->
      let mem = K.memory k1 pid in
      let msg = Msg.create () in
      Msg.set_segment msg Msg.Write_only ~ptr:4096 ~len:512;
      Alcotest.check Util.status "send" K.Ok (K.send k1 msg server);
      (* pattern indices are segment-relative (0..511) at our 4096. *)
      let got = Vkernel.Mem.read mem ~pos:4096 ~len:512 in
      let expect = Bytes.init 512 Vworkload.Testbed.pattern_byte in
      Alcotest.(check bytes) "reply segment data" expect got)

let test_reply_segment_too_big () =
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let server =
    K.spawn k2 ~name:"server" (fun _ ->
        let msg = Msg.create () in
        let src = K.receive k2 msg in
        Alcotest.check Util.status "oversize reply segment" K.Too_big
          (K.reply_with_segment k2 msg src ~destptr:0 ~segptr:0 ~segsize:8192);
        ignore (K.reply k2 msg src))
  in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      Msg.set_segment msg Msg.Write_only ~ptr:0 ~len:16384;
      Alcotest.check Util.status "send still completes" K.Ok
        (K.send k1 msg server))

let test_segment_truncation () =
  (* The receiver's segsize caps the piggyback; the kernel's
     max_seg_append caps what the Send transmits. *)
  let cap = K.default_config.K.max_seg_append in
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let counts = ref [] in
  let server =
    K.spawn k2 ~name:"server" (fun _ ->
        let msg = Msg.create () in
        let rec loop () =
          (* First receive offers only 100 bytes of buffer; second offers
             plenty. *)
          let n = if List.length !counts = 0 then 100 else 4096 in
          let src, count = K.receive_with_segment k2 msg ~segptr:0 ~segsize:n in
          counts := count :: !counts;
          ignore (K.reply k2 msg src);
          loop ()
        in
        loop ())
  in
  Util.run_as_process tb ~host:1 (fun pid ->
      let mem = K.memory k1 pid in
      Util.fill_pattern mem ~pos:0 ~len:2048;
      let msg = Msg.create () in
      Msg.set_segment msg Msg.Read_only ~ptr:0 ~len:2048;
      ignore (K.send k1 msg server);
      let msg = Msg.create () in
      Msg.set_segment msg Msg.Read_only ~ptr:0 ~len:2048;
      ignore (K.send k1 msg server));
  Alcotest.(check (list int))
    "receiver buffer caps, then the kernel append cap"
    [ 100; cap ] (List.rev !counts)

let test_plain_receive_ignores_segment () =
  (* "Use of ReceiveWithSegment ... is optional and transparent to
     processes simply using Send": a plain Receive gets the message and
     no data is deposited anywhere. *)
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let server =
    K.spawn k2 ~name:"server" (fun pid ->
        let mem = K.memory k2 pid in
        let msg = Msg.create () in
        let src = K.receive k2 msg in
        let untouched = Vkernel.Mem.read mem ~pos:0 ~len:64 in
        Alcotest.(check bytes) "receiver memory untouched"
          (Bytes.make 64 '\000') untouched;
        ignore (K.reply k2 msg src))
  in
  Util.run_as_process tb ~host:1 (fun pid ->
      let mem = K.memory k1 pid in
      Util.fill_pattern mem ~pos:0 ~len:512;
      let msg = Msg.create () in
      Msg.set_segment msg Msg.Read_only ~ptr:0 ~len:512;
      Alcotest.check Util.status "send with segment to plain receiver" K.Ok
        (K.send k1 msg server))

let test_bad_piggyback_range () =
  (* A read segment pointing outside the sender's space: the Send still
     completes, but nothing is piggybacked. *)
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let seen = ref (-1) in
  let server =
    K.spawn k2 ~name:"server" (fun _ ->
        let msg = Msg.create () in
        let src, count = K.receive_with_segment k2 msg ~segptr:0 ~segsize:512 in
        seen := count;
        ignore (K.reply k2 msg src))
  in
  Util.run_as_process tb ~host:1 (fun pid ->
      let mem = K.memory k1 pid in
      let msg = Msg.create () in
      Msg.set_segment msg Msg.Read_only
        ~ptr:(Vkernel.Mem.size mem - 16)
        ~len:4096;
      Alcotest.check Util.status "send still completes" K.Ok
        (K.send k1 msg server));
  Alcotest.(check int) "no bytes piggybacked" 0 !seen

let test_trace_attach () =
  (* An engine-scoped tracer observes kernel activity as typed events. *)
  let hits = ref 0 in
  let tb = Util.testbed ~hosts:2 () in
  let eng = tb.Vworkload.Testbed.eng in
  Alcotest.(check bool) "untraced" false (Vsim.Trace.tracing eng);
  Vsim.Trace.attach eng (fun _ ev ->
      if Vsim.Event.topic ev = "kernel" then incr hits);
  Alcotest.(check bool) "tracing" true (Vsim.Trace.tracing eng);
  let k1 = kernel_of tb 1 in
  let server = Util.start_echo_server tb ~host:2 in
  Util.run_as_process tb ~host:1 (fun _ ->
      ignore (K.send k1 (Msg.create ()) server));
  Vsim.Trace.detach_all eng;
  Alcotest.(check bool) "detached" false (Vsim.Trace.tracing eng);
  Alcotest.(check bool) "kernel events traced" true (!hits >= 4)

let test_page_read_timing_pinned () =
  (* Table 6-1's headline: remote 512-byte page read at 10 MHz is
     5.56 ms. The rig must stay within 0.15 ms of it. *)
  let cols =
    Vworkload.Rigs.page_op ~trials:30 ~client_host:2 ~write:false
      ~basic:false ()
  in
  Util.check_ms ~tolerance:0.15 "remote page read" 5.56
    cols.Vworkload.Rigs.elapsed

let test_multiple_clients_one_server () =
  let tb = Util.testbed ~hosts:4 () in
  let server = Util.start_echo_server tb ~host:1 in
  let done_count = ref 0 in
  for h = 2 to 4 do
    let k = kernel_of tb h in
    ignore
      (K.spawn k ~name:"client" (fun _ ->
           let msg = Msg.create () in
           for i = 1 to 10 do
             Msg.set_u8 msg 4 i;
             Alcotest.check Util.status "send" K.Ok (K.send k msg server);
             Alcotest.(check int) "echo" (i + 1) (Msg.get_u8 msg 4)
           done;
           incr done_count))
  done;
  Vworkload.Testbed.run tb;
  Alcotest.(check int) "all clients done" 3 !done_count

let test_cross_host_pids () =
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 in
  let server = Util.start_echo_server tb ~host:2 in
  Alcotest.(check int) "server pid carries host 2" 2 (Vkernel.Pid.host server);
  Util.run_as_process tb ~host:1 (fun pid ->
      Alcotest.(check int) "client pid carries host 1" 1 (Vkernel.Pid.host pid);
      ignore (K.send k1 (Msg.create ()) server))

let suite =
  [
    Alcotest.test_case "remote exchange" `Quick test_remote_exchange;
    Alcotest.test_case "remote timing (Table 5-1)" `Quick
      test_remote_timing_8mhz;
    Alcotest.test_case "client/server overlap" `Quick test_concurrency_overlap;
    Alcotest.test_case "piggybacked segment" `Quick test_piggybacked_segment;
    Alcotest.test_case "reply with segment" `Quick
      test_reply_with_segment_remote;
    Alcotest.test_case "reply segment too big" `Quick
      test_reply_segment_too_big;
    Alcotest.test_case "segment truncation" `Quick test_segment_truncation;
    Alcotest.test_case "bad piggyback range" `Quick test_bad_piggyback_range;
    Alcotest.test_case "trace attach" `Quick test_trace_attach;
    Alcotest.test_case "plain receive ignores segment" `Quick
      test_plain_receive_ignores_segment;
    Alcotest.test_case "page read timing (Table 6-1)" `Quick
      test_page_read_timing_pinned;
    Alcotest.test_case "multiple clients" `Quick
      test_multiple_clients_one_server;
    Alcotest.test_case "cross-host pids" `Quick test_cross_host_pids;
  ]
