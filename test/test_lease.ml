(* Server-granted leases with callback invalidation (doc/LEASES.md):
   grant/refresh, break-before-ack, expiry without callback, the
   Gray-Cheriton wait-out for unreachable holders, the zero-RPC reopen
   fast path, the post-restart grace period, and the two-client
   coherence workload the sweep drives. *)

module K = Vkernel.Kernel
module Io = Vfs.Client.Io
module Schedule = Vcheck.Schedule
module Checker = Vcheck.Checker
module Shared_workload = Vcheck.Shared_workload

let kernel_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.kernel
let now tb = Vsim.Engine.now tb.Vworkload.Testbed.eng

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "client: %s" (Vfs.Client.error_to_string e)

(* Server on host 1 (journaled, restartable, configurable term); client
   hosts 2 and 3.  The fast kernel config keeps retransmission timing in
   the same range the vcheck workloads use. *)
let rig ?(lease_term_ns = Vsim.Time.ms 200) () =
  let tb =
    Util.testbed ~hosts:3 ~kernel_config:Vcheck.Workload.fast_config ()
  in
  let fs =
    Vworkload.Testbed.make_test_fs tb ~journal_blocks:64
      ~files:[ ("data", 8 * 512) ]
      ()
  in
  let server =
    Vfs.Server.start (kernel_of tb 1) fs
      ~config:{ Vfs.Server.default_config with lease_term_ns }
      ~restartable:true ()
  in
  (tb, fs, server)

let make_io ?(recover = false) ?(lease = true) tb ~host =
  let k = kernel_of tb host in
  let conn = get (Vfs.Client.connect k ()) in
  let cache =
    Vfs.Cache.create tb.Vworkload.Testbed.eng ~host
      { Vfs.Cache.capacity_blocks = 8; policy = Vfs.Cache.Write_through }
  in
  (Io.make ~cache ~recover ~lease conn, cache)

let expect_block b = Bytes.init 512 (fun i -> Util.pattern ((b * 512) + i))

let inum_of fs =
  match Vfs.Fs.lookup fs "data" with
  | Some i -> i
  | None -> Alcotest.fail "data file missing"

(* Remote writer through the plain stubs: no cache, no lease. *)
let stub_write tb ~host ~block fill =
  let k = kernel_of tb host in
  let mem = K.my_memory k in
  let conn = get (Vfs.Client.connect k ()) in
  let h = get (Vfs.Client.open_file conn "data") in
  Vkernel.Mem.write mem ~pos:0 (Bytes.make 512 fill);
  let (_ : int) =
    get (Vfs.Client.write_page conn h ~block ~buf:0 ~count:512)
  in
  get (Vfs.Client.close_file conn h)

(* Grant on open, refresh on read: one holder, counted once, valid on
   the client; a lease-less client gets nothing. *)
let test_grant () =
  let tb, fs, server = rig () in
  let inum = inum_of fs in
  Util.run_as_process tb ~host:2 (fun _ ->
      let io, _ = make_io tb ~host:2 in
      Alcotest.(check bool)
        "callback fiber spawned" false
        (Vkernel.Pid.equal (Io.callback_pid io) Vkernel.Pid.nil);
      let f = get (Io.open_file io "data") in
      Alcotest.(check bool) "lease valid after open" true
        (Io.file_lease_valid f);
      Alcotest.(check int) "one grant" 1 (Vfs.Server.leases_granted server);
      let (_ : Bytes.t) = get (Io.read f ~off:0 ~len:512) in
      Alcotest.(check int) "read refreshes, not re-grants" 1
        (Vfs.Server.leases_granted server);
      Alcotest.(check (list bool)) "exactly our callback holds it"
        [ true ]
        (List.map
           (fun p -> Vkernel.Pid.equal p (Io.callback_pid io))
           (Vfs.Server.lease_holders server ~inum));
      get (Io.close f));
  Util.run_as_process tb ~host:3 (fun _ ->
      let io, _ = make_io ~lease:false tb ~host:3 in
      Alcotest.(check bool) "no callback without ~lease" true
        (Vkernel.Pid.equal (Io.callback_pid io) Vkernel.Pid.nil);
      let f = get (Io.open_file io "data") in
      Alcotest.(check bool) "no lease without ~lease" false
        (Io.file_lease_valid f);
      get (Io.close f))

(* Break-before-ack: a conflicting write from another client voids the
   holder's lease and purges its cache before the writer's ack, so the
   holder's very next read observes the new bytes. *)
let test_break () =
  let tb, _, server = rig () in
  Util.run_as_process tb ~host:2 (fun _ ->
      let io, _ = make_io tb ~host:2 in
      let f = get (Io.open_file io "data") in
      Alcotest.(check bytes) "cached old content" (expect_block 0)
        (get (Io.read f ~off:0 ~len:512));
      let writer_done = ref false in
      let (_ : Vkernel.Pid.t) =
        K.spawn (kernel_of tb 3) ~name:"writer" (fun _ ->
            stub_write tb ~host:3 ~block:0 'R';
            writer_done := true)
      in
      Vsim.Proc.sleep (Vsim.Time.ms 100);
      Alcotest.(check bool) "writer acked" true !writer_done;
      Alcotest.(check int) "one break callback" 1 (Io.breaks_received io);
      Alcotest.(check int) "server counted it" 1
        (Vfs.Server.leases_broken server);
      Alcotest.(check bool) "lease voided" false (Io.file_lease_valid f);
      Alcotest.(check bytes) "next read sees the write, no staleness"
        (Bytes.make 512 'R')
        (get (Io.read f ~off:0 ~len:512));
      Alcotest.(check bool) "refetch re-leased" true (Io.file_lease_valid f);
      get (Io.close f))

(* Expiry: past its term the lease dies by clock on both sides — the
   server drops the holder without a callback, and the client purges its
   cached blocks on first touch so a post-expiry read refetches. *)
let test_expiry () =
  let tb, _, server = rig ~lease_term_ns:(Vsim.Time.ms 5) () in
  Util.run_as_process tb ~host:2 (fun _ ->
      let io, _ = make_io tb ~host:2 in
      let f = get (Io.open_file io "data") in
      Alcotest.(check bytes) "cached under lease" (expect_block 0)
        (get (Io.read f ~off:0 ~len:512));
      Vsim.Proc.sleep (Vsim.Time.ms 20);
      Alcotest.(check bool) "expired on the client" false
        (Io.file_lease_valid f);
      let writer_done = ref false in
      let (_ : Vkernel.Pid.t) =
        K.spawn (kernel_of tb 3) ~name:"writer" (fun _ ->
            stub_write tb ~host:3 ~block:0 'R';
            writer_done := true)
      in
      Vsim.Proc.sleep (Vsim.Time.ms 100);
      Alcotest.(check bool) "writer acked" true !writer_done;
      Alcotest.(check int) "no callback for an expired lease" 0
        (Io.breaks_received io);
      Alcotest.(check bool) "server dropped it as expired" true
        (Vfs.Server.leases_expired server >= 1);
      Alcotest.(check bytes) "post-expiry read refetches fresh bytes"
        (Bytes.make 512 'R')
        (get (Io.read f ~off:0 ~len:512));
      get (Io.close f))

(* An unreachable, unexpired holder cannot acknowledge a break; the
   server falls back to waiting out the remainder of its term before
   acking the conflicting write (the Gray-Cheriton guarantee). *)
let test_waitout () =
  let tb, _, server = rig ~lease_term_ns:(Vsim.Time.ms 200) () in
  let k2 = kernel_of tb 2 in
  let granted_at = ref 0 in
  let a_ready = ref false in
  let (_ : Vkernel.Pid.t) =
    K.spawn k2 ~name:"holder" (fun _ ->
        let io, _ = make_io tb ~host:2 in
        (* Anchor before the open: every server-side grant for this
           holder happens strictly after this instant, so its expiry is
           strictly after [granted_at + term]. *)
        granted_at := now tb;
        let f = get (Io.open_file io "data") in
        let (_ : Bytes.t) = get (Io.read f ~off:0 ~len:512) in
        a_ready := true;
        (* Park forever holding the lease; the crash takes us down. *)
        Vsim.Proc.sleep (Vsim.Time.ms 10_000))
  in
  Util.run_as_process tb ~host:3 (fun _ ->
      let rec wait_ready n =
        if !a_ready then ()
        else if n = 0 then Alcotest.fail "holder never got its lease"
        else begin
          Vsim.Proc.sleep (Vsim.Time.ms 1);
          wait_ready (n - 1)
        end
      in
      wait_ready 200;
      K.crash k2;
      stub_write tb ~host:3 ~block:0 'R';
      (* The write was not acknowledged until the dead holder's lease
         could no longer be live anywhere: the server's wait-out runs to
         its recorded grant-time expiry, which lies strictly beyond
         [granted_at + term]. *)
      Alcotest.(check bool) "ack waited out the dead holder's term" true
        (now tb >= !granted_at + Vsim.Time.ms 200);
      Alcotest.(check int) "counted as a break" 1
        (Vfs.Server.leases_broken server))

(* Reopening a parked file under a live lease touches the server zero
   times: the close parked the handle, the reopen reuses it, and the
   warm cache serves the read. *)
let test_zero_rpc_reopen () =
  let tb, _, server = rig () in
  Util.run_as_process tb ~host:2 (fun _ ->
      let io, cache = make_io tb ~host:2 in
      let f = get (Io.open_file io "data") in
      Alcotest.(check bytes) "warmup read" (expect_block 0)
        (get (Io.read f ~off:0 ~len:512));
      get (Io.close f);
      let before = Vfs.Server.requests_served server in
      let hits0 = (Vfs.Cache.stats cache).Vfs.Cache.hits in
      let f2 = get (Io.open_file io "data") in
      Alcotest.(check int) "reopen under lease: zero server requests" 0
        (Vfs.Server.requests_served server - before);
      Alcotest.(check bool) "lease still stands" true
        (Io.file_lease_valid f2);
      Alcotest.(check bytes) "read after reopen" (expect_block 0)
        (get (Io.read f2 ~off:0 ~len:512));
      Alcotest.(check int) "served from cache" (hits0 + 1)
        (Vfs.Cache.stats cache).Vfs.Cache.hits;
      Alcotest.(check int) "still zero server requests" 0
        (Vfs.Server.requests_served server - before);
      get (Io.close f2))

(* A server restart kills its lease table.  The new incarnation must
   wait out one full term before acking conflicting writes (it cannot
   break leases it cannot enumerate), and the old holder's client must
   demote itself instead of trusting the dead incarnation's lease. *)
let test_restart_grace () =
  let tb, fs, server = rig ~lease_term_ns:(Vsim.Time.ms 200) () in
  let k1 = kernel_of tb 1 in
  let inum = inum_of fs in
  let holder_io = ref None in
  let holder_file = ref None in
  let a_ready = ref false in
  let (_ : Vkernel.Pid.t) =
    K.spawn (kernel_of tb 2) ~name:"holder" (fun _ ->
        let io, _ = make_io ~recover:true tb ~host:2 in
        let f = get (Io.open_file io "data") in
        let (_ : Bytes.t) = get (Io.read f ~off:0 ~len:512) in
        holder_io := Some io;
        holder_file := Some f;
        a_ready := true)
  in
  Util.run_as_process tb ~host:3 (fun _ ->
      let rec wait_ready n =
        if !a_ready then ()
        else if n = 0 then Alcotest.fail "holder never got its lease"
        else begin
          Vsim.Proc.sleep (Vsim.Time.ms 1);
          wait_ready (n - 1)
        end
      in
      wait_ready 200;
      Alcotest.(check int) "one holder before the crash" 1
        (List.length (Vfs.Server.lease_holders server ~inum));
      K.crash k1;
      Vsim.Proc.sleep (Vsim.Time.ms 30);
      K.restart k1;
      let restarted = now tb in
      Vsim.Proc.sleep (Vsim.Time.ms 20);
      Alcotest.(check int) "lease table died with the host" 0
        (List.length (Vfs.Server.lease_holders server ~inum));
      stub_write tb ~host:3 ~block:0 'R';
      Alcotest.(check int) "write sat out the grace period" 1
        (Vfs.Server.grace_waits server);
      Alcotest.(check bool) "grace spans a full term from restart" true
        (now tb >= restarted + Vsim.Time.ms 200));
  (* The old holder reads again: its lease lapsed long ago, so it must
     refetch — through session recovery, since its handle died too. *)
  Util.run_as_process tb ~host:2 (fun _ ->
      match !holder_file with
      | None -> Alcotest.fail "holder file missing"
      | Some f ->
          Alcotest.(check bool) "old incarnation's lease lapsed" false
            (Io.file_lease_valid f);
          Alcotest.(check bytes) "demoted holder sees the new bytes"
            (Bytes.make 512 'R')
            (get (Io.read f ~off:0 ~len:512)))

let violation_strings vs =
  List.map
    (fun (v : Checker.violation) ->
      v.Checker.invariant ^ ": " ^ v.Checker.detail)
    vs

(* The two-client coherence workload: clean unfaulted, clean under a few
   spot schedules (the full sweep runs in CI), and actually exercising
   the machinery it claims to. *)
let test_shared_workload () =
  let r = Shared_workload.run () in
  Alcotest.(check (list string)) "baseline clean" []
    (violation_strings (Checker.shared_violations_of r));
  Alcotest.(check (option int)) "reopen under lease cost zero RPCs"
    (Some 0) r.Shared_workload.lease_reopen_rpcs;
  Alcotest.(check bool) "breaks actually flowed" true
    (r.Shared_workload.breaks_a >= 1 && r.Shared_workload.breaks_b >= 1);
  List.iter
    (fun sched ->
        Alcotest.(check (list string))
          ("schedule " ^ Schedule.to_string sched)
          []
          (violation_strings (Checker.run_shared_schedule sched)))
    Schedule.
      [
        [ { frame = 2; action = Net Vnet.Fault.Drop } ];
        [ { frame = 9; action = Net (Vnet.Fault.Delay (Vsim.Time.ms 15)) } ];
        [
          { frame = 5; action = Net Vnet.Fault.Duplicate };
          { frame = 11; action = Net Vnet.Fault.Reorder };
        ];
        [ { frame = 6; action = Restart (Vsim.Time.ms 50) } ];
      ]

let suite =
  [
    Alcotest.test_case "grant" `Quick test_grant;
    Alcotest.test_case "break before ack" `Quick test_break;
    Alcotest.test_case "expiry" `Quick test_expiry;
    Alcotest.test_case "wait-out for unreachable holder" `Quick test_waitout;
    Alcotest.test_case "zero-RPC reopen" `Quick test_zero_rpc_reopen;
    Alcotest.test_case "restart grace period" `Quick test_restart_grace;
    Alcotest.test_case "shared coherence workload" `Quick
      test_shared_workload;
  ]
