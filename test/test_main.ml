let () =
  Alcotest.run "v-kernel"
    [
      ("sim", Test_sim.suite);
      ("pool", Test_pool.suite);
      ("hw", Test_hw.suite);
      ("net", Test_net.suite);
      ("msg-pid", Test_msg.suite);
      ("packet", Test_packet.suite);
      ("kernel-local", Test_kernel_local.suite);
      ("kernel-remote", Test_kernel_remote.suite);
      ("forward", Test_forward.suite);
      ("mapped", Test_mapped.suite);
      ("move", Test_move.suite);
      ("registry", Test_registry.suite);
      ("fault", Test_fault.suite);
      ("rto", Test_rto.suite);
      ("disk", Test_disk.suite);
      ("fs", Test_fs.suite);
      ("file-server", Test_server.suite);
      ("server-team", Test_team.suite);
      ("cache", Test_cache.suite);
      ("lease", Test_lease.suite);
      ("baseline", Test_baseline.suite);
      ("workload", Test_workload.suite);
      ("vexec", Test_vexec.suite);
      ("stress", Test_stress.suite);
      ("obs", Test_obs.suite);
      ("catalog", Test_catalog.suite);
      ("check", Test_check.suite);
      ("inet", Test_inet.suite);
      ("failover", Test_failover.suite);
      ("boot", Test_boot.suite);
      ("journal", Test_journal.suite);
      ("crash", Test_crash.suite);
    ]
