(* The 10 Mb-style table-driven host addressing: logical hosts are not
   station addresses; unknown correspondences are resolved by broadcast
   and learned from received packets (Section 3.1). *)

module K = Vkernel.Kernel
module Msg = Vkernel.Msg

(* Build hosts by hand: logical host ids deliberately differ from station
   addresses. *)
let build () =
  let eng = Vsim.Engine.create () in
  let medium = Vnet.Medium.create eng Vnet.Medium.config_10mb in
  let mk ~addr ~host =
    let cpu =
      Vhw.Cpu.create eng ~model:Vhw.Cost_model.sun_10mhz
        ~name:(Printf.sprintf "cpu%d" addr)
    in
    let nic = Vnet.Nic.create eng ~cpu ~medium ~addr in
    K.create_mapped eng ~cpu ~nic ~host ()
  in
  let k1 = mk ~addr:7 ~host:4000 in
  let k2 = mk ~addr:9 ~host:5000 in
  (eng, medium, k1, k2)

let test_mapped_exchange () =
  let eng, _medium, k1, k2 = build () in
  let server =
    K.spawn k2 ~name:"server" (fun _ ->
        let msg = Msg.create () in
        let rec loop () =
          let src = K.receive k2 msg in
          Msg.set_u8 msg 4 (Msg.get_u8 msg 4 + 1);
          ignore (K.reply k2 msg src);
          loop ()
        in
        loop ())
  in
  Alcotest.(check int) "server pid carries logical host" 5000
    (Vkernel.Pid.host server);
  let done_ = ref false in
  let (_ : Vkernel.Pid.t) =
    K.spawn k1 ~name:"client" (fun _ ->
        let msg = Msg.create () in
        for i = 1 to 5 do
          Msg.set_u8 msg 4 i;
          Alcotest.check Util.status "send" K.Ok (K.send k1 msg server);
          Alcotest.(check int) "echo" (i + 1) (Msg.get_u8 msg 4)
        done;
        done_ := true)
  in
  Vsim.Engine.run eng;
  Alcotest.(check bool) "completed" true !done_

let test_mapped_learns_addresses () =
  (* First packet to an unknown logical host goes out as broadcast; once
     the reply teaches the mapping, traffic is unicast. *)
  let eng, medium, k1, k2 = build () in
  let server =
    K.spawn k2 ~name:"server" (fun _ ->
        let msg = Msg.create () in
        let rec loop () =
          let src = K.receive k2 msg in
          ignore (K.reply k2 msg src);
          loop ()
        in
        loop ())
  in
  let stats0 = ref 0 in
  (* Count broadcast frames via a third station. *)
  let bcast_seen = ref 0 in
  let (_ : Vnet.Medium.port) =
    Vnet.Medium.attach medium ~addr:33 ~rx:(fun f ->
        if Vnet.Frame.is_broadcast f then incr bcast_seen)
  in
  ignore stats0;
  let (_ : Vkernel.Pid.t) =
    K.spawn k1 ~name:"client" (fun _ ->
        let msg = Msg.create () in
        for _ = 1 to 5 do
          ignore (K.send k1 msg server)
        done)
  in
  Vsim.Engine.run eng;
  (* Exactly the first Send should have been broadcast; the server's
     reply taught k1 the station address, and the server learned k1's
     from the request itself. *)
  Alcotest.(check int) "only the first packet broadcast" 1 !bcast_seen

let test_mapped_getpid () =
  let eng, _medium, k1, k2 = build () in
  let spid = ref Vkernel.Pid.nil in
  let (_ : Vkernel.Pid.t) =
    K.spawn k2 ~name:"server" (fun pid ->
        spid := pid;
        K.set_pid k2 ~logical_id:12 pid K.Any;
        Vsim.Proc.sleep (Vsim.Time.sec 1))
  in
  let found = ref None in
  let (_ : Vkernel.Pid.t) =
    K.spawn k1 ~name:"client" (fun _ ->
        Vsim.Proc.sleep (Vsim.Time.ms 5);
        found := K.get_pid k1 ~logical_id:12 K.Any)
  in
  Vsim.Engine.run eng;
  Alcotest.(check bool) "discovered across mapped hosts" true
    (!found = Some !spid)

let test_direct_requires_matching_address () =
  let eng = Vsim.Engine.create () in
  let medium = Vnet.Medium.create eng Vnet.Medium.config_3mb in
  let cpu = Vhw.Cpu.create eng ~model:Vhw.Cost_model.sun_10mhz ~name:"c" in
  let nic = Vnet.Nic.create eng ~cpu ~medium ~addr:5 in
  (try
     ignore (K.create eng ~cpu ~nic ~host:6 ());
     Alcotest.fail "mismatched direct host accepted"
   with Invalid_argument _ -> ());
  ignore (K.create eng ~cpu ~nic ~host:5 ())

let suite =
  [
    Alcotest.test_case "mapped exchange" `Quick test_mapped_exchange;
    Alcotest.test_case "broadcast once, then unicast" `Quick
      test_mapped_learns_addresses;
    Alcotest.test_case "mapped getpid" `Quick test_mapped_getpid;
    Alcotest.test_case "direct address check" `Quick
      test_direct_requires_matching_address;
  ]
