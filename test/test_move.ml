(* Remote MoveTo/MoveFrom: multi-packet bulk transfer. *)

module K = Vkernel.Kernel
module Msg = Vkernel.Msg

let kernel_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.kernel

(* Standard two-host rig: a "granter" on host 1 sends to a "mover" on
   host 2 with a read/write grant on [0, grant_len), then checks a
   predicate when the mover replies. *)
let with_mover ?kernel_config ?(grant_len = 128 * 1024) ~mover_body
    ~granter_check () =
  let tb = Util.testbed ?kernel_config ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let mover =
    K.spawn k2 ~name:"mover" (fun pid ->
        let mem = K.memory k2 pid in
        let msg = Msg.create () in
        let src = K.receive k2 msg in
        mover_body k2 mem src;
        ignore (K.reply k2 msg src))
  in
  let finished = ref false in
  let (_ : Vkernel.Pid.t) =
    K.spawn k1 ~name:"granter" (fun pid ->
        let mem = K.memory k1 pid in
        Util.fill_pattern mem ~pos:0 ~len:grant_len;
        let msg = Msg.create () in
        Msg.set_segment msg Msg.Read_write ~ptr:0 ~len:grant_len;
        Msg.set_no_piggyback msg;
        Alcotest.check Util.status "grant send" K.Ok (K.send k1 msg mover);
        granter_check k1 mem;
        finished := true)
  in
  Vworkload.Testbed.run tb;
  Alcotest.(check bool) "granter finished" true !finished;
  (tb, k1, k2)

let test_move_to_integrity () =
  (* Mover writes a 64 KB pattern into the granter's space. *)
  let (_ : _) =
    with_mover
      ~mover_body:(fun k2 mem src ->
        Vkernel.Mem.write mem ~pos:0
          (Bytes.init 65536 (fun i -> Vworkload.Testbed.pattern_byte (i * 3)));
        Alcotest.check Util.status "move_to" K.Ok
          (K.move_to k2 ~dst_pid:src ~dst:4096 ~src:0 ~count:65536))
      ~granter_check:(fun _ mem ->
        let got = Vkernel.Mem.read mem ~pos:4096 ~len:65536 in
        let expect =
          Bytes.init 65536 (fun i -> Vworkload.Testbed.pattern_byte (i * 3))
        in
        Alcotest.(check bool) "64KB intact" true (Bytes.equal got expect))
      ()
  in
  ()

let test_move_from_integrity () =
  (* Mover reads 32 KB of the granter's pattern. *)
  let (_ : _) =
    with_mover
      ~mover_body:(fun k2 mem src ->
        Alcotest.check Util.status "move_from" K.Ok
          (K.move_from k2 ~src_pid:src ~dst:0 ~src:8192 ~count:32768);
        let got = Vkernel.Mem.read mem ~pos:0 ~len:32768 in
        let expect =
          Bytes.init 32768 (fun i -> Vworkload.Testbed.pattern_byte (8192 + i))
        in
        Alcotest.(check bool) "32KB intact" true (Bytes.equal got expect))
      ~granter_check:(fun _ _ -> ())
      ()
  in
  ()

let test_move_beyond_grant () =
  let (_ : _) =
    with_mover ~grant_len:4096
      ~mover_body:(fun k2 _ src ->
        Alcotest.check Util.status "write past grant" K.No_permission
          (K.move_to k2 ~dst_pid:src ~dst:0 ~src:0 ~count:8192);
        Alcotest.check Util.status "read past grant" K.No_permission
          (K.move_from k2 ~src_pid:src ~dst:0 ~src:0 ~count:8192))
      ~granter_check:(fun _ _ -> ())
      ()
  in
  ()

let test_move_to_dead_process () =
  let tb = Util.testbed ~hosts:2 () in
  let k2 = kernel_of tb 2 in
  let ghost = Vkernel.Pid.make ~host:1 ~local:999 in
  Util.run_as_process tb ~host:2 (fun _ ->
      Alcotest.check Util.status "move to ghost" K.Nonexistent
        (K.move_to k2 ~dst_pid:ghost ~dst:0 ~src:0 ~count:1024))

let test_zero_byte_move () =
  let (_ : _) =
    with_mover
      ~mover_body:(fun k2 _ src ->
        Alcotest.check Util.status "empty move_to" K.Ok
          (K.move_to k2 ~dst_pid:src ~dst:0 ~src:0 ~count:0))
      ~granter_check:(fun _ _ -> ())
      ()
  in
  ()

let test_odd_sizes =
  (* Transfers that are not multiples of the packet size must still be
     exact. *)
  Util.qtest ~count:20 "odd-size transfers are exact"
    QCheck.(int_range 1 5000)
    (fun count ->
      let ok = ref false in
      let (_ : _) =
        with_mover
          ~mover_body:(fun k2 mem src ->
            Vkernel.Mem.write mem ~pos:0
              (Bytes.init count (fun i -> Vworkload.Testbed.pattern_byte (i + 13)));
            ignore (K.move_to k2 ~dst_pid:src ~dst:0 ~src:0 ~count))
          ~granter_check:(fun _ mem ->
            let got = Vkernel.Mem.read mem ~pos:0 ~len:count in
            let expect =
              Bytes.init count (fun i -> Vworkload.Testbed.pattern_byte (i + 13))
            in
            ok := Bytes.equal got expect)
          ()
      in
      !ok)

let test_move_packet_count () =
  (* A 64 KB MoveTo should use total/1024 data packets + 1 ack and no
     retransmissions on a clean network. *)
  let _, k1, k2 =
    with_mover
      ~mover_body:(fun k2 mem src ->
        Vkernel.Mem.fill mem ~pos:0 ~len:65536 'd';
        ignore (K.move_to k2 ~dst_pid:src ~dst:0 ~src:0 ~count:65536))
      ~granter_check:(fun _ _ -> ())
      ()
  in
  let s2 = K.stats k2 in
  let s1 = K.stats k1 in
  Alcotest.(check int) "no retrans" 0 s2.K.retransmissions;
  Alcotest.(check int) "no naks" 0 s1.K.gap_naks_sent;
  (* 64 data packets + 1 grant-reply + 1 reply ack-ish: mover sent
     64 data + 1 reply = 65; granter sent 1 send + 1 data ack = 2. *)
  Alcotest.(check int) "mover packets" 65 s2.K.packets_sent;
  Alcotest.(check int) "granter packets" 2 s1.K.packets_sent

let suite =
  [
    Alcotest.test_case "move_to integrity (64KB)" `Quick test_move_to_integrity;
    Alcotest.test_case "move_from integrity (32KB)" `Quick
      test_move_from_integrity;
    Alcotest.test_case "move beyond grant" `Quick test_move_beyond_grant;
    Alcotest.test_case "move to dead process" `Quick test_move_to_dead_process;
    Alcotest.test_case "zero-byte move" `Quick test_zero_byte_move;
    test_odd_sizes;
    Alcotest.test_case "move packet counts" `Quick test_move_packet_count;
  ]
