(* Tests for pids and the 32-byte message format. *)

let test_pid_roundtrip =
  Util.qtest "pid encode/decode roundtrip"
    QCheck.(pair (int_bound 0xFFFF) (int_range 1 0xFFFF))
    (fun (host, local) ->
      let pid = Vkernel.Pid.make ~host ~local in
      Vkernel.Pid.host pid = host
      && Vkernel.Pid.local pid = local
      && Vkernel.Pid.of_int (Vkernel.Pid.to_int pid) = pid)

let test_pid_validation () =
  Alcotest.check_raises "local 0 is reserved"
    (Invalid_argument "Pid.make: local id out of range") (fun () ->
      ignore (Vkernel.Pid.make ~host:1 ~local:0));
  Alcotest.(check bool) "nil" true (Vkernel.Pid.is_nil Vkernel.Pid.nil);
  Alcotest.(check string) "pp" "3.7"
    (Format.asprintf "%a" Vkernel.Pid.pp (Vkernel.Pid.make ~host:3 ~local:7))

let test_msg_accessors () =
  let m = Vkernel.Msg.create () in
  Vkernel.Msg.set_u8 m 1 0xAB;
  Vkernel.Msg.set_u16 m 2 0xCDEF;
  Vkernel.Msg.set_u32 m 4 0xDEADBEEF;
  Alcotest.(check int) "u8" 0xAB (Vkernel.Msg.get_u8 m 1);
  Alcotest.(check int) "u16" 0xCDEF (Vkernel.Msg.get_u16 m 2);
  Alcotest.(check int) "u32" 0xDEADBEEF (Vkernel.Msg.get_u32 m 4)

let test_msg_reserved_areas () =
  let m = Vkernel.Msg.create () in
  (try
     Vkernel.Msg.set_u8 m 0 1;
     Alcotest.fail "byte 0 is reserved"
   with Invalid_argument _ -> ());
  (try
     Vkernel.Msg.set_u32 m 24 1;
     Alcotest.fail "segment words are reserved"
   with Invalid_argument _ -> ());
  try
    Vkernel.Msg.set_u32 m 21 1;
    Alcotest.fail "straddles the segment words"
  with Invalid_argument _ -> ()

let test_segment_roundtrip =
  let access =
    QCheck.oneofl [ Vkernel.Msg.Read_only; Vkernel.Msg.Write_only;
                    Vkernel.Msg.Read_write ]
  in
  Util.qtest "segment descriptor roundtrip"
    QCheck.(triple access (int_bound 100000) (int_bound 100000))
    (fun (access, ptr, len) ->
      let m = Vkernel.Msg.create () in
      Vkernel.Msg.set_segment m access ~ptr ~len;
      Vkernel.Msg.segment m = Some (access, ptr, len))

let test_segment_access () =
  let m = Vkernel.Msg.create () in
  Alcotest.(check bool) "no segment" false (Vkernel.Msg.has_segment m);
  Vkernel.Msg.set_segment m Vkernel.Msg.Read_only ~ptr:64 ~len:512;
  Alcotest.(check (option (pair int int)))
    "readable" (Some (64, 512))
    (Vkernel.Msg.readable_segment m);
  Alcotest.(check (option (pair int int))) "not writable" None
    (Vkernel.Msg.writable_segment m);
  Vkernel.Msg.set_segment m Vkernel.Msg.Read_write ~ptr:0 ~len:8;
  Alcotest.(check (option (pair int int)))
    "rw writable" (Some (0, 8))
    (Vkernel.Msg.writable_segment m);
  Vkernel.Msg.clear_segment m;
  Alcotest.(check bool) "cleared" false (Vkernel.Msg.has_segment m)

let test_no_piggyback () =
  let m = Vkernel.Msg.create () in
  Vkernel.Msg.set_segment m Vkernel.Msg.Read_only ~ptr:0 ~len:100;
  Alcotest.(check bool) "default allowed" true (Vkernel.Msg.piggyback_allowed m);
  Vkernel.Msg.set_no_piggyback m;
  Alcotest.(check bool) "disabled" false (Vkernel.Msg.piggyback_allowed m);
  Alcotest.(check bool) "segment still present" true (Vkernel.Msg.has_segment m)

let test_payload_independent_of_segment () =
  (* Setting a segment must not clobber application bytes 1..23. *)
  let m = Vkernel.Msg.create () in
  Vkernel.Msg.set_u32 m 4 0x12345678;
  Vkernel.Msg.set_segment m Vkernel.Msg.Write_only ~ptr:4096 ~len:512;
  Alcotest.(check int) "payload intact" 0x12345678 (Vkernel.Msg.get_u32 m 4)

let suite =
  [
    test_pid_roundtrip;
    Alcotest.test_case "pid validation" `Quick test_pid_validation;
    Alcotest.test_case "msg accessors" `Quick test_msg_accessors;
    Alcotest.test_case "msg reserved areas" `Quick test_msg_reserved_areas;
    test_segment_roundtrip;
    Alcotest.test_case "segment access" `Quick test_segment_access;
    Alcotest.test_case "no-piggyback flag" `Quick test_no_piggyback;
    Alcotest.test_case "payload vs segment" `Quick
      test_payload_independent_of_segment;
  ]
