(* Tests for the Ethernet medium and NIC. *)

let cfg3 = Vnet.Medium.config_3mb

let setup ?(medium_config = cfg3) () =
  let eng = Vsim.Engine.create () in
  let medium = Vnet.Medium.create eng medium_config in
  (eng, medium)

let test_delivery_timing () =
  let eng, medium = setup () in
  let arrival = ref (-1) in
  let (_ : Vnet.Medium.port) =
    Vnet.Medium.attach medium ~addr:2 ~rx:(fun _ ->
        arrival := Vsim.Engine.now eng)
  in
  let (_ : Vnet.Medium.port) = Vnet.Medium.attach medium ~addr:1 ~rx:ignore in
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:0 (Bytes.make 64 'x'));
  Vsim.Engine.run eng;
  (* 64 bytes at 2721 ns/byte + 30 us latency *)
  let expect = (64 * Vnet.Medium.byte_time_ns cfg3) + cfg3.Vnet.Medium.latency_ns in
  Alcotest.(check int) "arrival time" expect !arrival

let test_broadcast () =
  let eng, medium = setup () in
  let got = ref [] in
  for a = 1 to 3 do
    ignore (Vnet.Medium.attach medium ~addr:a ~rx:(fun _ -> got := a :: !got))
  done;
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:Vnet.Addr.broadcast ~ethertype:0
       (Bytes.make 10 'b'));
  Vsim.Engine.run eng;
  Alcotest.(check (list int)) "everyone but the sender" [ 2; 3 ]
    (List.sort compare !got)

let test_carrier_sense () =
  (* A transmission started while the medium is busy (outside the
     collision window) defers and goes out after the first completes. *)
  let eng, medium = setup () in
  let arrivals = ref [] in
  ignore
    (Vnet.Medium.attach medium ~addr:3 ~rx:(fun f ->
         arrivals := (f.Vnet.Frame.src, Vsim.Engine.now eng) :: !arrivals));
  ignore (Vnet.Medium.attach medium ~addr:1 ~rx:ignore);
  ignore (Vnet.Medium.attach medium ~addr:2 ~rx:ignore);
  let tx src payload =
    Vnet.Medium.transmit medium
      (Vnet.Frame.make ~src ~dst:3 ~ethertype:0 (Bytes.make payload 'x'))
  in
  tx 1 1000;
  (* Second transmit 1 ms in: medium still busy (1000 B = 2.72 ms). *)
  ignore (Vsim.Engine.after eng (Vsim.Time.ms 1) (fun () -> tx 2 100));
  Vsim.Engine.run eng;
  let bt = Vnet.Medium.byte_time_ns cfg3 and lat = cfg3.Vnet.Medium.latency_ns in
  let first_end = 1000 * bt in
  Alcotest.(check (list (pair int int)))
    "serialized on the wire"
    [ (1, first_end + lat); (2, first_end + (100 * bt) + lat) ]
    (List.rev !arrivals);
  let stats = Vnet.Medium.stats medium in
  Alcotest.(check int) "no collisions" 0 stats.Vnet.Medium.collisions

let test_collision_backoff () =
  (* Two stations transmitting at the same instant collide, then both
     frames eventually get through via backoff. *)
  let eng, medium = setup () in
  let got = ref 0 in
  ignore (Vnet.Medium.attach medium ~addr:3 ~rx:(fun _ -> incr got));
  ignore (Vnet.Medium.attach medium ~addr:1 ~rx:ignore);
  ignore (Vnet.Medium.attach medium ~addr:2 ~rx:ignore);
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:3 ~ethertype:0 (Bytes.make 100 'a'));
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:2 ~dst:3 ~ethertype:0 (Bytes.make 100 'b'));
  Vsim.Engine.run eng;
  let stats = Vnet.Medium.stats medium in
  Alcotest.(check int) "both delivered" 2 !got;
  Alcotest.(check bool) "collision happened" true
    (stats.Vnet.Medium.collisions >= 1)

let test_fault_drop () =
  let eng, medium = setup () in
  Vnet.Medium.set_fault medium (Vnet.Fault.drop 1.0);
  let got = ref 0 in
  ignore (Vnet.Medium.attach medium ~addr:2 ~rx:(fun _ -> incr got));
  ignore (Vnet.Medium.attach medium ~addr:1 ~rx:ignore);
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:0 (Bytes.make 10 'x'));
  Vsim.Engine.run eng;
  Alcotest.(check int) "nothing arrives" 0 !got;
  Alcotest.(check int) "counted" 1 (Vnet.Medium.stats medium).Vnet.Medium.dropped

let test_fault_corrupt_and_crc () =
  let eng, medium = setup () in
  Vnet.Medium.set_fault medium (Vnet.Fault.corrupt 1.0);
  let cpu = Vhw.Cpu.create eng ~model:Vhw.Cost_model.sun_8mhz ~name:"c" in
  let nic2 = Vnet.Nic.create eng ~cpu ~medium ~addr:2 in
  let got = ref 0 in
  Vnet.Nic.set_receiver nic2 ~ethertype:7 (fun _ -> incr got);
  ignore (Vnet.Medium.attach medium ~addr:1 ~rx:ignore);
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:7 (Bytes.make 10 'x'));
  Vsim.Engine.run eng;
  Alcotest.(check int) "handler never sees corrupt frame" 0 !got;
  Alcotest.(check int) "CRC drop counted" 1 (Vnet.Nic.crc_drops nic2);
  Alcotest.(check bool) "CPU still paid for the packet" true
    (Vhw.Cpu.busy_ns cpu > 0)

let test_scripted_duplicate () =
  (* A duplicated frame reaches its receiver twice; the stats account the
     extra copy so delivery conservation still balances. *)
  let eng, medium = setup () in
  Vnet.Medium.set_fault medium
    (Vnet.Fault.script [ (1, Vnet.Fault.Duplicate) ]);
  let got = ref 0 in
  ignore (Vnet.Medium.attach medium ~addr:2 ~rx:(fun _ -> incr got));
  ignore (Vnet.Medium.attach medium ~addr:1 ~rx:ignore);
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:0 (Bytes.make 10 'x'));
  Vsim.Engine.run eng;
  let s = Vnet.Medium.stats medium in
  Alcotest.(check int) "both copies arrive" 2 !got;
  Alcotest.(check int) "duplicate counted" 1 s.Vnet.Medium.duplicated;
  Alcotest.(check int) "conservation" 0
    (s.Vnet.Medium.targeted + s.Vnet.Medium.duplicated
    - s.Vnet.Medium.delivered - s.Vnet.Medium.dropped)

let test_scripted_reorder () =
  (* Reorder holds a frame until the next completed transmission, so two
     back-to-back frames swap arrival order. *)
  let eng, medium = setup () in
  Vnet.Medium.set_fault medium (Vnet.Fault.script [ (1, Vnet.Fault.Reorder) ]);
  let order = ref [] in
  ignore
    (Vnet.Medium.attach medium ~addr:2 ~rx:(fun f ->
         order := Bytes.get f.Vnet.Frame.payload 0 :: !order));
  ignore (Vnet.Medium.attach medium ~addr:1 ~rx:ignore);
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:0 (Bytes.make 10 'a'));
  (* Past the first frame's wire time, so the two never collide. *)
  ignore
    (Vsim.Engine.after eng (Vsim.Time.us 60) (fun () ->
         Vnet.Medium.transmit medium
           (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:0 (Bytes.make 10 'b'))));
  Vsim.Engine.run eng;
  let s = Vnet.Medium.stats medium in
  Alcotest.(check (list char)) "swapped" [ 'b'; 'a' ] (List.rev !order);
  Alcotest.(check int) "nothing lost" 2 s.Vnet.Medium.delivered;
  Alcotest.(check int) "conservation" 0
    (s.Vnet.Medium.targeted + s.Vnet.Medium.duplicated
    - s.Vnet.Medium.delivered - s.Vnet.Medium.dropped)

let test_broadcast_drop_per_receiver () =
  (* A scripted drop of a broadcast frame loses one copy per receiver:
     with three stations attached, two intended deliveries are lost and
     the conservation identity still holds. *)
  let eng, medium = setup () in
  Vnet.Medium.set_fault medium (Vnet.Fault.script [ (1, Vnet.Fault.Drop) ]);
  let got = ref 0 in
  for a = 1 to 3 do
    ignore (Vnet.Medium.attach medium ~addr:a ~rx:(fun _ -> incr got))
  done;
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:Vnet.Addr.broadcast ~ethertype:0
       (Bytes.make 10 'b'));
  Vsim.Engine.run eng;
  let s = Vnet.Medium.stats medium in
  Alcotest.(check int) "nobody hears it" 0 !got;
  Alcotest.(check int) "two intended receivers" 2 s.Vnet.Medium.targeted;
  Alcotest.(check int) "both copies counted lost" 2 s.Vnet.Medium.dropped;
  Alcotest.(check int) "conservation" 0
    (s.Vnet.Medium.targeted + s.Vnet.Medium.duplicated
    - s.Vnet.Medium.delivered - s.Vnet.Medium.dropped)

let test_drop_events_name_receiver () =
  (* Packet_drop is attributed to the receiver that missed the frame for
     both scripted and probabilistic faults; the reasons distinguish
     them. *)
  let collect () =
    let eng, medium = setup () in
    let drops = ref [] in
    Vsim.Engine.add_tracer eng (fun _ ev ->
        match ev with
        | Vsim.Event.Packet_drop { host; reason; _ } ->
            drops := (host, reason) :: !drops
        | _ -> ());
    ignore (Vnet.Medium.attach medium ~addr:2 ~rx:ignore);
    ignore (Vnet.Medium.attach medium ~addr:1 ~rx:ignore);
    (eng, medium, drops)
  in
  let eng, medium, drops = collect () in
  Vnet.Medium.set_fault medium (Vnet.Fault.script [ (1, Vnet.Fault.Drop) ]);
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:0 (Bytes.make 10 'x'));
  Vsim.Engine.run eng;
  Alcotest.(check (list (pair int string)))
    "scripted drop names the receiver"
    [ (2, "fault-scripted") ]
    !drops;
  let eng, medium, drops = collect () in
  Vnet.Medium.set_fault medium (Vnet.Fault.drop 1.0);
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:0 (Bytes.make 10 'x'));
  Vsim.Engine.run eng;
  Alcotest.(check (list (pair int string)))
    "probabilistic drop names the receiver"
    [ (2, "fault") ]
    !drops

let test_nic_costs () =
  (* The NIC charges setup + per-byte copy on transmit. *)
  let eng, medium = setup () in
  let m = Vhw.Cost_model.sun_8mhz in
  let cpu1 = Vhw.Cpu.create eng ~model:m ~name:"c1" in
  let nic1 = Vnet.Nic.create eng ~cpu:cpu1 ~medium ~addr:1 in
  ignore (Vnet.Medium.attach medium ~addr:2 ~rx:ignore);
  let (_ : Vsim.Proc.t) =
    Vsim.Proc.spawn eng (fun () ->
        Vnet.Nic.send nic1 ~dst:2 ~ethertype:0 (Bytes.make 100 'x'))
  in
  Vsim.Engine.run eng;
  Alcotest.(check int) "tx cost"
    (m.Vhw.Cost_model.pkt_send_setup_ns
    + (100 * m.Vhw.Cost_model.nic_copy_ns_per_byte))
    (Vhw.Cpu.busy_ns cpu1)

let test_nic_tx_buffer_serializes () =
  (* Back-to-back sends: copy of packet k+1 waits for packet k to leave
     the wire, so the inter-arrival gap is copy + wire time. *)
  let eng, medium = setup () in
  let m = Vhw.Cost_model.sun_10mhz in
  let cpu1 = Vhw.Cpu.create eng ~model:m ~name:"c1" in
  let nic1 = Vnet.Nic.create eng ~cpu:cpu1 ~medium ~addr:1 in
  let arrivals = ref [] in
  ignore
    (Vnet.Medium.attach medium ~addr:2 ~rx:(fun _ ->
         arrivals := Vsim.Engine.now eng :: !arrivals));
  let (_ : Vsim.Proc.t) =
    Vsim.Proc.spawn eng (fun () ->
        for _ = 1 to 3 do
          Vnet.Nic.send nic1 ~dst:2 ~ethertype:0 (Bytes.make 1000 'x')
        done)
  in
  Vsim.Engine.run eng;
  match List.rev !arrivals with
  | [ a; b; c ] ->
      let wire = 1000 * Vnet.Medium.byte_time_ns cfg3 in
      let copy =
        m.Vhw.Cost_model.pkt_send_setup_ns
        + (1000 * m.Vhw.Cost_model.nic_copy_ns_per_byte)
      in
      Alcotest.(check int) "gap 1" (wire + copy) (b - a);
      Alcotest.(check int) "gap 2" (wire + copy) (c - b)
  | l -> Alcotest.failf "expected 3 arrivals, got %d" (List.length l)

let test_utilization_metering () =
  let eng, medium = setup () in
  ignore (Vnet.Medium.attach medium ~addr:1 ~rx:ignore);
  ignore (Vnet.Medium.attach medium ~addr:2 ~rx:ignore);
  let mark = Vnet.Medium.mark medium in
  Vnet.Medium.transmit medium
    (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:0 (Bytes.make 500 'x'));
  ignore (Vsim.Engine.after eng (Vsim.Time.ms 10) ignore);
  Vsim.Engine.run eng;
  let wire = float_of_int (500 * Vnet.Medium.byte_time_ns cfg3) in
  let expect = wire /. 10e6 in
  let got = Vnet.Medium.utilization_since medium mark in
  if Float.abs (got -. expect) > 0.02 then
    Alcotest.failf "utilization %.4f vs %.4f" got expect;
  Alcotest.(check int) "bits" (500 * 8) (Vnet.Medium.bits_since medium mark)

let test_oversize_rejected () =
  let _, medium = setup () in
  ignore (Vnet.Medium.attach medium ~addr:1 ~rx:ignore);
  try
    Vnet.Medium.transmit medium
      (Vnet.Frame.make ~src:1 ~dst:2 ~ethertype:0 (Bytes.make 4096 'x'));
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_10mb_config () =
  Alcotest.(check int) "10 Mb byte time" 800
    (Vnet.Medium.byte_time_ns Vnet.Medium.config_10mb);
  Alcotest.(check int) "3 Mb byte time" 2721 (Vnet.Medium.byte_time_ns cfg3)

let suite =
  [
    Alcotest.test_case "delivery timing" `Quick test_delivery_timing;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "carrier sense" `Quick test_carrier_sense;
    Alcotest.test_case "collision backoff" `Quick test_collision_backoff;
    Alcotest.test_case "fault drop" `Quick test_fault_drop;
    Alcotest.test_case "fault corrupt + CRC" `Quick test_fault_corrupt_and_crc;
    Alcotest.test_case "scripted duplicate" `Quick test_scripted_duplicate;
    Alcotest.test_case "scripted reorder" `Quick test_scripted_reorder;
    Alcotest.test_case "broadcast drop per receiver" `Quick
      test_broadcast_drop_per_receiver;
    Alcotest.test_case "drop events name receiver" `Quick
      test_drop_events_name_receiver;
    Alcotest.test_case "nic tx costs" `Quick test_nic_costs;
    Alcotest.test_case "nic tx buffer" `Quick test_nic_tx_buffer_serializes;
    Alcotest.test_case "utilization metering" `Quick test_utilization_metering;
    Alcotest.test_case "oversize rejected" `Quick test_oversize_rejected;
    Alcotest.test_case "bit rates" `Quick test_10mb_config;
  ]
