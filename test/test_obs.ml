(* Observability: typed events, JSONL/Chrome sinks, span correlation,
   the metrics registry, and the Stat additions backing them. *)

module K = Vkernel.Kernel
module Msg = Vkernel.Msg
module TB = Vworkload.Testbed

let kernel_of tb i = (TB.host tb i).TB.kernel

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* One remote Send-Receive-Reply exchange per trial, as in the paper's
   kernel-performance rig. *)
let run_srr ?seed ~trials tb_fn =
  let tb = Util.testbed ?seed ~hosts:2 () in
  tb_fn tb;
  let k1 = kernel_of tb 1 in
  let server = Util.start_echo_server tb ~host:2 in
  let elapsed = ref 0 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      let eng = K.engine k1 in
      let t0 = Vsim.Engine.now eng in
      for _ = 1 to trials do
        ignore (K.send k1 msg server)
      done;
      elapsed := Vsim.Engine.now eng - t0);
  !elapsed

(* --- typed events and the JSONL sink --------------------------------- *)

let test_jsonl_roundtrip () =
  let buf = Buffer.create 4096 in
  let (_ : int) =
    run_srr ~trials:3 (fun tb ->
        (* The correlator re-emits span events into the same stream. *)
        let (_ : Vobs.Spans.t) = Vobs.Spans.attach tb.TB.eng in
        Vobs.Jsonl.attach tb.TB.eng (Buffer.add_string buf))
  in
  let lines =
    List.filter (fun l -> l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check bool) "trace is non-empty" true (List.length lines > 10);
  let names =
    List.map
      (fun line ->
        match Vobs.Json.parse line with
        | Error e -> Alcotest.failf "unparseable line %S: %s" line e
        | Ok json -> (
            (match Vobs.Json.member "ts" json with
            | Some (Vobs.Json.Int ts) ->
                Alcotest.(check bool) "ts >= 0" true (ts >= 0)
            | _ -> Alcotest.fail "missing ts");
            match Vobs.Json.member "name" json with
            | Some (Vobs.Json.Str n) -> n
            | _ -> Alcotest.fail "missing name"))
      lines
  in
  let count n = List.length (List.filter (String.equal n) names) in
  Alcotest.(check int) "three remote sends" 3 (count "send");
  Alcotest.(check int) "three completions" 3 (count "send_done");
  Alcotest.(check int) "three receives" 3 (count "receive");
  Alcotest.(check int) "spans close" 3 (count "span_close");
  Alcotest.(check bool) "packets on the wire" true (count "packet_tx" >= 6)

let test_topic_filter () =
  let buf = Buffer.create 4096 in
  let (_ : int) =
    run_srr ~trials:2 (fun tb ->
        Vobs.Jsonl.attach ~topics:[ "net" ] tb.TB.eng (Buffer.add_string buf))
  in
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.iter (fun line ->
         if line <> "" then
           match Vobs.Json.parse line with
           | Ok json ->
               Alcotest.(check string)
                 "only net events pass" "net"
                 (match Vobs.Json.member "topic" json with
                 | Some (Vobs.Json.Str t) -> t
                 | _ -> "?")
           | Error e -> Alcotest.failf "unparseable: %s" e)

let test_determinism () =
  let capture () =
    let buf = Buffer.create 4096 in
    let (_ : int) =
      run_srr ~seed:42L ~trials:5 (fun tb ->
          Vobs.Jsonl.attach tb.TB.eng (Buffer.add_string buf))
    in
    Buffer.contents buf
  in
  let a = capture () and b = capture () in
  Alcotest.(check bool) "byte-identical traces" true (String.equal a b)

let test_engine_isolation () =
  (* A sink attached to one engine must not observe another engine's
     events. *)
  let buf = Buffer.create 256 in
  let eng_a = Vsim.Engine.create () in
  let eng_b = Vsim.Engine.create () in
  Vobs.Jsonl.attach eng_a (Buffer.add_string buf);
  Vsim.Trace.event eng_b (Vsim.Event.User { topic = "test"; msg = "b" });
  Alcotest.(check string) "nothing from engine B" "" (Buffer.contents buf);
  Vsim.Trace.event eng_a (Vsim.Event.User { topic = "test"; msg = "a" });
  Alcotest.(check bool) "engine A observed" true (Buffer.length buf > 0)

(* --- spans ----------------------------------------------------------- *)

let test_span_balance () =
  let spans = ref None in
  let elapsed =
    run_srr ~trials:4 (fun tb -> spans := Some (Vobs.Spans.attach tb.TB.eng))
  in
  let t = Option.get !spans in
  Alcotest.(check int) "all spans closed" 0 (Vobs.Spans.open_count t);
  Alcotest.(check int) "one span per exchange" 4 (Vobs.Spans.closed t);
  let sum = ref 0 in
  List.iter
    (fun s ->
      Alcotest.(check string) "span ok" "ok" s.Vobs.Spans.status;
      Alcotest.(check int)
        "segments tile the span" (Vobs.Spans.total_ns s)
        (Vobs.Spans.segments_sum s);
      Alcotest.(check int)
        "seven segments" 7
        (List.length s.Vobs.Spans.segments);
      sum := !sum + Vobs.Spans.total_ns s)
    (Vobs.Spans.spans t);
  (* The client does nothing between exchanges, so the spans tile the
     measured window exactly: client-observed latency == span time. *)
  Alcotest.(check int) "spans account for all elapsed time" elapsed !sum

(* --- metrics --------------------------------------------------------- *)

let test_metrics_counts () =
  let reg = Vobs.Metrics.create () in
  let (_ : int) =
    run_srr ~trials:3 (fun tb -> Vobs.Metrics.attach reg tb.TB.eng)
  in
  let v name = Vsim.Stat.Counter.value (Vobs.Metrics.counter reg ~host:1 name) in
  Alcotest.(check int) "client remote sends" 3 (v "sends_remote");
  Alcotest.(check int) "client tx = request packets" 3 (v "packets_tx");
  Alcotest.(check int) "server receives" 3
    (Vsim.Stat.Counter.value (Vobs.Metrics.counter reg ~host:2 "receives"));
  let dump = Format.asprintf "%a" Vobs.Metrics.pp reg in
  Alcotest.(check bool) "table dump mentions sends_remote" true
    (contains dump "sends_remote");
  match Vobs.Json.parse (Vobs.Json.to_string (Vobs.Metrics.to_json reg)) with
  | Error e -> Alcotest.failf "metrics json: %s" e
  | Ok json -> (
      match Vobs.Json.member "host-1" json with
      | Some h1 ->
          Alcotest.(check bool) "host-1 has sends_remote" true
            (Vobs.Json.member "sends_remote" h1 = Some (Vobs.Json.Int 3))
      | None -> Alcotest.fail "missing host-1")

let test_metrics_kind_clash () =
  let reg = Vobs.Metrics.create () in
  Vobs.Metrics.add reg ~host:0 "x" 1;
  Alcotest.check_raises "histogram over counter"
    (Invalid_argument "Metrics.histogram: x@host0 is a counter") (fun () ->
      ignore (Vobs.Metrics.histogram reg ~host:0 "x"))

(* --- chrome trace ---------------------------------------------------- *)

let test_chrome_export () =
  let c = Vobs.Chrome_trace.create () in
  let (_ : int) =
    run_srr ~trials:2 (fun tb ->
        let (_ : Vobs.Spans.t) = Vobs.Spans.attach tb.TB.eng in
        Vobs.Chrome_trace.attach c tb.TB.eng)
  in
  Alcotest.(check bool) "events recorded" true (Vobs.Chrome_trace.count c > 0);
  match Vobs.Json.parse (Vobs.Chrome_trace.to_string c) with
  | Error e -> Alcotest.failf "chrome json: %s" e
  | Ok (Vobs.Json.List records) ->
      let phases =
        List.filter_map
          (fun r ->
            match Vobs.Json.member "ph" r with
            | Some (Vobs.Json.Str p) -> Some p
            | _ -> None)
          records
      in
      Alcotest.(check int) "every record has a phase" (List.length records)
        (List.length phases);
      let has p = List.exists (String.equal p) phases in
      Alcotest.(check bool) "metadata records" true (has "M");
      Alcotest.(check bool) "instants" true (has "i");
      Alcotest.(check bool) "span slices" true (has "X")
  | Ok _ -> Alcotest.fail "chrome trace is not a JSON array"

(* --- json ------------------------------------------------------------ *)

let test_json_escapes () =
  let j = Vobs.Json.Str "a\"b\\c\nd\te\r\x01" in
  let s = Vobs.Json.to_string j in
  Alcotest.(check string) "escaped"
    "\"a\\\"b\\\\c\\nd\\te\\r\\u0001\"" s;
  match Vobs.Json.parse s with
  | Ok j' -> Alcotest.(check bool) "round trip" true (j = j')
  | Error e -> Alcotest.failf "parse: %s" e

let test_json_rejects_trailing () =
  match Vobs.Json.parse "{\"a\":1} x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

(* --- stat additions -------------------------------------------------- *)

let test_series_stddev () =
  let s = Vsim.Stat.Series.create () in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Vsim.Stat.Series.stddev s);
  Vsim.Stat.Series.add s 4.0;
  Alcotest.(check (float 1e-9)) "single" 0.0 (Vsim.Stat.Series.stddev s);
  List.iter (Vsim.Stat.Series.add s) [ 7.0; 13.0; 16.0 ];
  (* sample stddev of {4,7,13,16}: mean 10, var (36+9+9+36)/3 = 30 *)
  Alcotest.(check (float 1e-9)) "sample stddev" (sqrt 30.0)
    (Vsim.Stat.Series.stddev s)

let test_series_percentile_edges () =
  let s = Vsim.Stat.Series.create () in
  Vsim.Stat.Series.add s 5.0;
  Alcotest.(check (float 1e-9)) "single p0" 5.0
    (Vsim.Stat.Series.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "single p100" 5.0
    (Vsim.Stat.Series.percentile s 100.0);
  List.iter (Vsim.Stat.Series.add s) [ 1.0; 9.0; 3.0 ];
  Alcotest.(check (float 1e-9)) "p0 is the minimum" 1.0
    (Vsim.Stat.Series.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100 is the maximum" 9.0
    (Vsim.Stat.Series.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p50 nearest-rank" 3.0
    (Vsim.Stat.Series.percentile s 50.0)

let test_histogram () =
  let h = Vsim.Stat.Histogram.create ~bounds:[| 10.0; 100.0 |] () in
  List.iter (Vsim.Stat.Histogram.add h) [ 1.0; 10.0; 50.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Vsim.Stat.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1061.0 (Vsim.Stat.Histogram.sum h);
  (match Vsim.Stat.Histogram.buckets h with
  | [ (10.0, 2); (100.0, 1); (inf, 1) ] when inf = infinity -> ()
  | b ->
      Alcotest.failf "unexpected buckets: %s"
        (String.concat ";"
           (List.map (fun (x, c) -> Printf.sprintf "(%g,%d)" x c) b)));
  Alcotest.check_raises "bounds must increase"
    (Invalid_argument "Histogram.create: bounds must be strictly increasing")
    (fun () -> ignore (Vsim.Stat.Histogram.create ~bounds:[| 2.0; 1.0 |] ()))

let suite =
  [
    Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "topic filter" `Quick test_topic_filter;
    Alcotest.test_case "deterministic traces" `Quick test_determinism;
    Alcotest.test_case "engine isolation" `Quick test_engine_isolation;
    Alcotest.test_case "span balance" `Quick test_span_balance;
    Alcotest.test_case "metrics counts" `Quick test_metrics_counts;
    Alcotest.test_case "metrics kind clash" `Quick test_metrics_kind_clash;
    Alcotest.test_case "chrome export" `Quick test_chrome_export;
    Alcotest.test_case "json escapes" `Quick test_json_escapes;
    Alcotest.test_case "json trailing input" `Quick test_json_rejects_trailing;
    Alcotest.test_case "series stddev" `Quick test_series_stddev;
    Alcotest.test_case "percentile edges" `Quick test_series_percentile_edges;
    Alcotest.test_case "histogram" `Quick test_histogram;
  ]
