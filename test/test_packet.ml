(* Tests for interkernel packet serialization. *)

let all_ops =
  [
    Vkernel.Packet.Send; Vkernel.Packet.Reply; Vkernel.Packet.Reply_pending;
    Vkernel.Packet.Nack; Vkernel.Packet.Data_mt; Vkernel.Packet.Data_mf;
    Vkernel.Packet.Data_ack; Vkernel.Packet.Data_nak;
    Vkernel.Packet.Move_from_req; Vkernel.Packet.Getpid_req;
    Vkernel.Packet.Getpid_reply;
  ]

let test_roundtrip_all_ops () =
  List.iter
    (fun op ->
      let msg = Vkernel.Msg.create () in
      Vkernel.Msg.set_u32 msg 4 42;
      let pkt =
        Vkernel.Packet.make ~op
          ~src_pid:(Vkernel.Pid.make ~host:1 ~local:2)
          ~dst_pid:(Vkernel.Pid.make ~host:3 ~local:4)
          ~seq:77 ~offset:1024 ~total:4096 ~aux:555 ~msg
          ~data:(Bytes.of_string "hello") ()
      in
      match Vkernel.Packet.of_bytes (Vkernel.Packet.to_bytes pkt) with
      | Error e -> Alcotest.failf "%s: %s" (Vkernel.Packet.op_to_string op) e
      | Ok pkt' ->
          Alcotest.(check string)
            (Vkernel.Packet.op_to_string op)
            (Format.asprintf "%a" Vkernel.Packet.pp pkt)
            (Format.asprintf "%a" Vkernel.Packet.pp pkt');
          Alcotest.(check bytes) "data" pkt.Vkernel.Packet.data
            pkt'.Vkernel.Packet.data;
          Alcotest.(check int) "msg word" 42
            (Vkernel.Msg.get_u32 pkt'.Vkernel.Packet.msg 4))
    all_ops

let test_roundtrip_random =
  Util.qtest "packet roundtrip (random fields)"
    QCheck.(
      quad (int_bound 0xFFFFFF) (int_bound 0xFFFFFF) (int_bound 0xFFFFFF)
        (string_of_size (Gen.int_bound 1024)))
    (fun (seq, offset, total, data) ->
      let pkt =
        Vkernel.Packet.make ~op:Vkernel.Packet.Data_mt
          ~src_pid:(Vkernel.Pid.make ~host:9 ~local:9)
          ~dst_pid:(Vkernel.Pid.make ~host:8 ~local:8)
          ~seq ~offset ~total ~data:(Bytes.of_string data) ()
      in
      match Vkernel.Packet.of_bytes (Vkernel.Packet.to_bytes pkt) with
      | Error _ -> false
      | Ok p ->
          p.Vkernel.Packet.seq = seq
          && p.Vkernel.Packet.offset = offset
          && p.Vkernel.Packet.total = total
          && Bytes.to_string p.Vkernel.Packet.data = data)

let test_wire_length () =
  let pkt =
    Vkernel.Packet.make ~op:Vkernel.Packet.Send
      ~src_pid:(Vkernel.Pid.make ~host:1 ~local:1)
      ~dst_pid:(Vkernel.Pid.make ~host:2 ~local:1)
      ~seq:1 ()
  in
  (* A bare message exchange packet is exactly 64 bytes: this is what the
     network-penalty comparison in Table 5-1 relies on. *)
  Alcotest.(check int) "message packet is 64 bytes" 64
    (Vkernel.Packet.wire_length pkt);
  let pkt512 = { pkt with Vkernel.Packet.data = Bytes.make 512 'x' } in
  Alcotest.(check int) "page packet is 576 bytes" 576
    (Vkernel.Packet.wire_length pkt512)

let test_parse_errors () =
  (match Vkernel.Packet.of_bytes (Bytes.make 10 '\000') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short packet accepted");
  let bad_op = Bytes.make 64 '\000' in
  Bytes.set bad_op 0 '\255';
  (match Vkernel.Packet.of_bytes bad_op with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad op accepted");
  (* Length mismatch: header claims more data than the frame carries. *)
  let pkt =
    Vkernel.Packet.make ~op:Vkernel.Packet.Send
      ~src_pid:(Vkernel.Pid.make ~host:1 ~local:1)
      ~dst_pid:(Vkernel.Pid.make ~host:2 ~local:1)
      ~seq:1 ~data:(Bytes.make 100 'x') ()
  in
  let wire = Vkernel.Packet.to_bytes pkt in
  let truncated = Bytes.sub wire 0 (Bytes.length wire - 10) in
  match Vkernel.Packet.of_bytes truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated packet accepted"

let suite =
  [
    Alcotest.test_case "roundtrip all ops" `Quick test_roundtrip_all_ops;
    test_roundtrip_random;
    Alcotest.test_case "wire lengths" `Quick test_wire_length;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
  ]
