(* Vsim.Job / Vsim.Pool: ordering, failure determinism, the Eventq kind
   table and lazy compaction, and cross-domain byte-determinism of the
   vcheck sweep — the contract `--domains N` rests on. *)

module Job = Vsim.Job
module Pool = Vsim.Pool
module Eventq = Vsim.Eventq
module Checker = Vcheck.Checker

let test_job_basics () =
  let j = Job.v ~label:"double" (fun () -> 21) in
  Alcotest.(check string) "label" "double" (Job.label j);
  Alcotest.(check int) "run" 21 (Job.run j);
  let j2 = Job.map (fun n -> n * 2) j in
  Alcotest.(check string) "map keeps label" "double" (Job.label j2);
  Alcotest.(check int) "map applies" 42 (Job.run j2)

(* Result i must belong to job i for every domain count, including
   domain counts above the job count. *)
let test_pool_ordering () =
  let jobs = List.init 37 (fun i -> Job.v (fun () -> i * i)) in
  let expect = List.init 37 (fun i -> i * i) in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "ordered at domains=%d" domains)
        expect
        (Pool.run_list ~domains jobs))
    [ 1; 2; 4; 64 ]

let test_pool_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Pool.run_list ~domains:4 []);
  Alcotest.(check (list int)) "single" [ 7 ]
    (Pool.run_list ~domains:4 [ Job.v (fun () -> 7) ])

exception Boom of int

(* The lowest failing index must surface for any domain count. *)
let test_pool_failure_deterministic () =
  let jobs =
    List.init 20 (fun i ->
        Job.v ~label:(Printf.sprintf "j%d" i) (fun () ->
            if i mod 7 = 3 then raise (Boom i) else i))
  in
  List.iter
    (fun domains ->
      match Pool.run_list ~domains jobs with
      | _ -> Alcotest.fail "failing batch returned results"
      | exception Pool.Job_failed { index; label; exn } ->
          Alcotest.(check int)
            (Printf.sprintf "lowest index at domains=%d" domains)
            3 index;
          Alcotest.(check string) "label" "j3" label;
          Alcotest.(check bool) "original exn" true (exn = Boom 3))
    [ 1; 2; 4 ]

(* The persistent pool: workers spawn once, park between batches, and
   get reused — and an eager shutdown respawns cleanly. *)
let test_pool_persistent_reuse () =
  Pool.shutdown ();
  Alcotest.(check int) "empty after shutdown" 0 (Pool.persistent_workers ());
  let jobs = List.init 16 (fun i -> Job.v (fun () -> i * 5)) in
  let expect = List.init 16 (fun i -> i * 5) in
  Alcotest.(check (list int)) "first run" expect (Pool.run_list ~domains:3 jobs);
  let w = Pool.persistent_workers () in
  Alcotest.(check bool) "workers persist between batches" true (w >= 1);
  Alcotest.(check (list int)) "second run" expect
    (Pool.run_list ~domains:3 jobs);
  Alcotest.(check int) "reused, not respawned" w (Pool.persistent_workers ());
  Pool.shutdown ();
  Alcotest.(check int) "shutdown drains" 0 (Pool.persistent_workers ());
  Alcotest.(check (list int)) "respawn after shutdown" expect
    (Pool.run_list ~domains:3 jobs)

(* A job that itself calls Pool.run (a grid cell running a sweep) finds
   the pool busy and must still complete correctly via the ephemeral
   fallback. *)
let test_pool_nested_run () =
  let inner () =
    List.fold_left ( + ) 0
      (Pool.run_list ~domains:2 (List.init 5 (fun i -> Job.v (fun () -> i))))
  in
  let jobs = List.init 6 (fun j -> Job.v (fun () -> j + inner ())) in
  Alcotest.(check (list int)) "nested batches complete"
    (List.init 6 (fun j -> j + 10))
    (Pool.run_list ~domains:3 jobs)

let test_kind_interning () =
  let a = Eventq.Kind.intern "pool-test-kind-a" in
  let a' = Eventq.Kind.intern "pool-test-kind-a" in
  let b = Eventq.Kind.intern "pool-test-kind-b" in
  Alcotest.(check bool) "same string, same id" true (a = a');
  Alcotest.(check bool) "distinct strings, distinct ids" true (a <> b);
  Alcotest.(check string) "name round trip" "pool-test-kind-a"
    (Eventq.Kind.name a);
  Alcotest.(check string) "of_int round trip" "pool-test-kind-b"
    (Eventq.Kind.name (Eventq.Kind.of_int (b :> int)));
  match Eventq.Kind.of_int max_int with
  | (_ : Eventq.kind) -> Alcotest.fail "of_int accepted an unknown id"
  | exception Invalid_argument _ -> ()

(* Cancelled events are counted exactly and lazily swept: after
   cancelling far more than half the heap, the next add must compact. *)
let test_eventq_lazy_compaction () =
  let q = Eventq.create () in
  let evs =
    Array.init 300 (fun i ->
        Eventq.add q ~time:(i + 1) (fun () -> ()))
  in
  Alcotest.(check int) "live" 300 (Eventq.live_count q);
  Alcotest.(check int) "none cancelled" 0 (Eventq.cancelled_pending q);
  for i = 0 to 249 do
    Eventq.cancel evs.(i)
  done;
  (* Double cancel must not double count. *)
  Eventq.cancel evs.(0);
  Alcotest.(check int) "cancelled pending" 250 (Eventq.cancelled_pending q);
  Alcotest.(check int) "live after cancel" 50 (Eventq.live_count q);
  let before = Eventq.compactions q in
  let (_ : Eventq.event) = Eventq.add q ~time:1000 (fun () -> ()) in
  Alcotest.(check int) "compaction swept" 0 (Eventq.cancelled_pending q);
  Alcotest.(check bool) "compaction counted" true
    (Eventq.compactions q > before);
  Alcotest.(check int) "live preserved" 51 (Eventq.live_count q);
  (* The survivors still pop in time order. *)
  let rec drain acc =
    match Eventq.pop_ev q with
    | None -> List.rev acc
    | Some ev -> drain (Eventq.ev_time ev :: acc)
  in
  let times = drain [] in
  Alcotest.(check int) "drained all" 51 (List.length times);
  Alcotest.(check (list int)) "time order" (List.sort compare times) times

(* Popping a cancelled event off the top must not leave a stale pending
   count behind (the gone flag), and cancel-after-fire is a no-op. *)
let test_eventq_cancel_accounting () =
  let q = Eventq.create () in
  let e1 = Eventq.add q ~time:1 (fun () -> ()) in
  let e2 = Eventq.add q ~time:2 (fun () -> ()) in
  Eventq.cancel e1;
  Alcotest.(check int) "one pending" 1 (Eventq.cancelled_pending q);
  (* pop skips the cancelled head and returns e2. *)
  (match Eventq.pop_ev q with
  | Some ev -> Alcotest.(check int) "skipped to live" 2 (Eventq.ev_time ev)
  | None -> Alcotest.fail "queue drained early");
  Alcotest.(check int) "skim cleared pending" 0 (Eventq.cancelled_pending q);
  Eventq.cancel e2;
  Alcotest.(check int) "cancel after fire is free" 0
    (Eventq.cancelled_pending q);
  Alcotest.(check bool) "empty" true (Eventq.is_empty q)

(* The acceptance bar: the depth-2 sweep's report (and its JSON) is a
   pure function of the seed — byte-identical for domains 1, 2 and 4. *)
let test_sweep_domain_determinism () =
  let report domains =
    match Checker.sweep ~depth:2 ~limit:60 ~domains () with
    | Error _ -> Alcotest.fail "baseline violated"
    | Ok r -> r
  in
  let r1 = report 1 in
  let j1 = Checker.report_to_json r1 in
  Alcotest.(check int) "ran the limit" 60 r1.Checker.schedules_run;
  List.iter
    (fun domains ->
      let r = report domains in
      Alcotest.(check bool)
        (Printf.sprintf "report equal at domains=%d" domains)
        true (r = r1);
      Alcotest.(check string)
        (Printf.sprintf "json equal at domains=%d" domains)
        j1 (Checker.report_to_json r))
    [ 2; 4 ]

(* A violating sweep must converge on the same first failing schedule
   for any domain count, even though parallel chunks run speculative
   schedules past the violation.  An event budget of 260 lets the
   unfaulted baseline (252 events) finish but starves any schedule
   whose injected drop forces a retransmission timeout — the first such
   schedule sits in the middle of the enumeration, so the in-order scan
   and speculative-discard logic are both exercised. *)
let test_sweep_failure_domain_determinism () =
  let failing domains =
    match
      Checker.sweep ~depth:1 ~limit:40 ~max_events:260 ~domains ()
    with
    | Error _ -> Alcotest.fail "expected a clean baseline"
    | Ok r -> r
  in
  let r1 = failing 1 in
  Alcotest.(check bool) "a schedule violated" true
    (r1.Checker.failure <> None);
  Alcotest.(check bool) "stopped mid-sweep" true
    (r1.Checker.schedules_run > 1 && r1.Checker.schedules_run < 40);
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "failure report equal at domains=%d" domains)
        true
        (failing domains = r1))
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "job basics" `Quick test_job_basics;
    Alcotest.test_case "pool result ordering" `Quick test_pool_ordering;
    Alcotest.test_case "pool empty and single" `Quick
      test_pool_empty_and_single;
    Alcotest.test_case "pool failure deterministic" `Quick
      test_pool_failure_deterministic;
    Alcotest.test_case "persistent workers reused" `Quick
      test_pool_persistent_reuse;
    Alcotest.test_case "nested run falls back" `Quick test_pool_nested_run;
    Alcotest.test_case "event kind interning" `Quick test_kind_interning;
    Alcotest.test_case "eventq lazy compaction" `Quick
      test_eventq_lazy_compaction;
    Alcotest.test_case "eventq cancel accounting" `Quick
      test_eventq_cancel_accounting;
    Alcotest.test_case "sweep domain determinism" `Slow
      test_sweep_domain_determinism;
    Alcotest.test_case "sweep failure domain determinism" `Slow
      test_sweep_failure_domain_determinism;
  ]
