(* SetPid/GetPid: the logical process registry with broadcast lookup. *)

module K = Vkernel.Kernel
module Msg = Vkernel.Msg

let kernel_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.kernel

let test_local_scope () =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  Util.run_as_process tb ~host:1 (fun pid ->
      K.set_pid k ~logical_id:5 pid K.Local;
      Alcotest.(check bool) "local lookup finds it" true
        (K.get_pid k ~logical_id:5 K.Local = Some pid);
      Alcotest.(check bool) "any lookup finds it" true
        (K.get_pid k ~logical_id:5 K.Any = Some pid))

let test_remote_discovery () =
  let tb = Util.testbed ~hosts:3 () in
  let k2 = kernel_of tb 2 in
  let server = ref Vkernel.Pid.nil in
  let k1 = kernel_of tb 1 in
  let (_ : Vkernel.Pid.t) =
    K.spawn k1 ~name:"server" (fun pid ->
        server := pid;
        K.set_pid k1 ~logical_id:9 pid K.Any;
        Vsim.Proc.sleep (Vsim.Time.sec 1))
  in
  let found = ref None in
  let (_ : Vkernel.Pid.t) =
    K.spawn k2 ~name:"client" (fun _ ->
        Vsim.Proc.sleep (Vsim.Time.ms 10);
        found := K.get_pid k2 ~logical_id:9 K.Any)
  in
  Vworkload.Testbed.run tb;
  Alcotest.(check bool) "broadcast discovery" true (!found = Some !server)

let test_local_only_not_visible_remotely () =
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let (_ : Vkernel.Pid.t) =
    K.spawn k1 ~name:"server" (fun pid ->
        K.set_pid k1 ~logical_id:7 pid K.Local;
        Vsim.Proc.sleep (Vsim.Time.sec 2))
  in
  let found = ref (Some Vkernel.Pid.nil) in
  let (_ : Vkernel.Pid.t) =
    K.spawn k2 ~name:"client" (fun _ ->
        Vsim.Proc.sleep (Vsim.Time.ms 10);
        found := K.get_pid k2 ~logical_id:7 K.Any)
  in
  Vworkload.Testbed.run tb;
  Alcotest.(check bool) "local-scope entry hidden from the network" true
    (!found = None)

let test_not_found_times_out () =
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 in
  let t_took = ref 0 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let t0 = Vsim.Engine.now (K.engine k1) in
      let r = K.get_pid k1 ~logical_id:404 K.Any in
      t_took := Vsim.Engine.now (K.engine k1) - t0;
      Alcotest.(check bool) "no such service" true (r = None));
  (* GetPid rides the shared retransmission path: 1 + max_retries
     broadcast attempts, each waiting at least the base timeout. *)
  let cfg = Vkernel.Kernel.default_config in
  Alcotest.(check bool) "took the retry budget" true
    (!t_took >= (1 + cfg.K.max_retries) * cfg.K.retransmit_timeout_ns);
  (* The rebroadcasts land in the shared counters, not a GetPid-private
     path. *)
  let s1 = K.stats k1 in
  Alcotest.(check int) "rebroadcasts counted as retransmissions"
    cfg.K.max_retries s1.K.retransmissions;
  Alcotest.(check int) "expiries counted as timeouts"
    (1 + cfg.K.max_retries) s1.K.timeouts_fired

let test_cache_after_discovery () =
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let (_ : Vkernel.Pid.t) =
    K.spawn k1 ~name:"server" (fun pid ->
        K.set_pid k1 ~logical_id:3 pid K.Any;
        Vsim.Proc.sleep (Vsim.Time.sec 2))
  in
  let second_lookup_ns = ref max_int in
  let (_ : Vkernel.Pid.t) =
    K.spawn k2 ~name:"client" (fun _ ->
        Vsim.Proc.sleep (Vsim.Time.ms 10);
        let first = K.get_pid k2 ~logical_id:3 K.Any in
        let t0 = Vsim.Engine.now (K.engine k2) in
        let second = K.get_pid k2 ~logical_id:3 K.Any in
        second_lookup_ns := Vsim.Engine.now (K.engine k2) - t0;
        Alcotest.(check bool) "stable answer" true (first = second && first <> None))
  in
  Vworkload.Testbed.run tb;
  (* A cached lookup costs just the syscall, not a broadcast round. *)
  Alcotest.(check bool) "second lookup is local" true
    (!second_lookup_ns < Vsim.Time.ms 1)

let test_send_via_logical_id () =
  (* The canonical client flow: find the file server by logical id, then
     talk to it. *)
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let (_ : Vkernel.Pid.t) =
    K.spawn k1 ~name:"server" (fun pid ->
        K.set_pid k1 ~logical_id:77 pid K.Any;
        let msg = Msg.create () in
        let src = K.receive k1 msg in
        Msg.set_u8 msg 4 99;
        ignore (K.reply k1 msg src))
  in
  let ok = ref false in
  let (_ : Vkernel.Pid.t) =
    K.spawn k2 ~name:"client" (fun _ ->
        Vsim.Proc.sleep (Vsim.Time.ms 5);
        match K.get_pid k2 ~logical_id:77 K.Any with
        | None -> Alcotest.fail "no server"
        | Some srv ->
            let msg = Msg.create () in
            Alcotest.check Util.status "send" K.Ok (K.send k2 msg srv);
            ok := Msg.get_u8 msg 4 = 99)
  in
  Vworkload.Testbed.run tb;
  Alcotest.(check bool) "request served" true !ok

let suite =
  [
    Alcotest.test_case "local scope" `Quick test_local_scope;
    Alcotest.test_case "remote discovery" `Quick test_remote_discovery;
    Alcotest.test_case "local-only hidden" `Quick
      test_local_only_not_visible_remotely;
    Alcotest.test_case "not found times out" `Quick test_not_found_times_out;
    Alcotest.test_case "cache after discovery" `Quick test_cache_after_discovery;
    Alcotest.test_case "send via logical id" `Quick test_send_via_logical_id;
  ]
