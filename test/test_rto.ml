(* The adaptive retransmission layer: Jacobson RTT estimation, Karn's
   rule, exponential backoff and the per-destination failure detector. *)

module K = Vkernel.Kernel
module Msg = Vkernel.Msg

let kernel_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.kernel
let adaptive_config = { K.default_config with K.rto_mode = K.Adaptive }

let test_estimator_converges () =
  let tb = Util.testbed ~kernel_config:adaptive_config ~hosts:2 () in
  let k1 = kernel_of tb 1 in
  let server = Util.start_echo_server tb ~host:2 in
  let before = K.rto_estimate_ns k1 ~dst_host:2 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      for _ = 1 to 20 do
        Alcotest.check Util.status "send" K.Ok (K.send k1 msg server)
      done);
  let after = K.rto_estimate_ns k1 ~dst_host:2 in
  (* The no-sample estimate is deliberately conservative; after twenty
     clean exchanges the RTO tracks the sub-millisecond round trip. *)
  Alcotest.(check bool) "seed is conservative" true (before >= Vsim.Time.ms 10);
  Alcotest.(check bool) "estimate converged" true (after < Vsim.Time.ms 5);
  Alcotest.(check bool) "estimate positive" true (after > 0);
  Alcotest.(check int) "no retransmissions on a clean wire" 0
    (K.stats k1).K.retransmissions

let test_karn_rule () =
  (* Frame 1 — the client's very first Send — is dropped, so the exchange
     completes via a retransmission and Karn's rule must reject its
     round trip as an RTT sample.  The following clean exchange finally
     seeds the estimator. *)
  let tb = Util.testbed ~kernel_config:adaptive_config ~hosts:2 () in
  let k1 = kernel_of tb 1 in
  Vnet.Medium.set_fault tb.Vworkload.Testbed.medium (Vnet.Fault.drop_nth [ 1 ]);
  let server = Util.start_echo_server tb ~host:2 in
  let tainted = ref 0 and clean = ref 0 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      Alcotest.check Util.status "retransmitted exchange" K.Ok
        (K.send k1 msg server);
      tainted := K.rto_estimate_ns k1 ~dst_host:2;
      Alcotest.check Util.status "clean exchange" K.Ok (K.send k1 msg server);
      clean := K.rto_estimate_ns k1 ~dst_host:2);
  Alcotest.(check bool) "tainted round trip rejected" true
    (!tainted >= Vsim.Time.ms 10);
  Alcotest.(check bool) "clean sample accepted" true (!clean < !tainted);
  Alcotest.(check int) "one retransmission" 1 (K.stats k1).K.retransmissions

let test_failure_detector () =
  let tb = Util.testbed ~kernel_config:adaptive_config ~hosts:2 () in
  let k1 = kernel_of tb 1 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      let void = Vkernel.Pid.make ~host:77 ~local:1 in
      Alcotest.check Util.status "first exhaustion is transient" K.Retryable
        (K.send k1 msg void);
      Alcotest.check Util.status "second exhaustion reads dead" K.Dead
        (K.send k1 msg void);
      Alcotest.check Util.status "stays dead" K.Dead (K.send k1 msg void));
  let s = K.stats k1 in
  Alcotest.(check int) "suspected exactly once" 1 s.K.hosts_suspected;
  Alcotest.(check bool) "timeouts were counted" true (s.K.timeouts_fired > 0)

let test_success_resets_detector () =
  (* A completed exchange clears the consecutive-failure count: two
     exhaustions separated by a success never trip the detector. *)
  let tb = Util.testbed ~kernel_config:adaptive_config ~hosts:2 () in
  let k1 = kernel_of tb 1 in
  let server = Util.start_echo_server tb ~host:2 in
  Util.run_as_process tb ~host:1 (fun _ ->
      let msg = Msg.create () in
      let ghost = Vkernel.Pid.make ~host:2 ~local:999 in
      Alcotest.check Util.status "nack does not hurt liveness" K.Nonexistent
        (K.send k1 msg ghost);
      Alcotest.check Util.status "live host still fine" K.Ok
        (K.send k1 msg server));
  Alcotest.(check int) "never suspected" 0 (K.stats k1).K.hosts_suspected

let test_determinism_under_loss () =
  (* Two identically seeded runs under random loss with adaptive timers
     (and their jittered backoff) must agree exactly. *)
  let run () =
    let tb =
      Util.testbed ~seed:424242L ~kernel_config:adaptive_config ~hosts:2 ()
    in
    let k1 = kernel_of tb 1 in
    Vnet.Medium.set_fault tb.Vworkload.Testbed.medium (Vnet.Fault.drop 0.15);
    let server = Util.start_echo_server tb ~host:2 in
    let elapsed = ref 0 in
    Util.run_as_process tb ~host:1 (fun _ ->
        let msg = Msg.create () in
        let t0 = Vsim.Engine.now (K.engine k1) in
        for _ = 1 to 40 do
          Alcotest.check Util.status "send" K.Ok (K.send k1 msg server)
        done;
        elapsed := Vsim.Engine.now (K.engine k1) - t0);
    (!elapsed, K.stats k1)
  in
  let e1, s1 = run () in
  let e2, s2 = run () in
  Alcotest.(check int) "elapsed identical" e1 e2;
  Alcotest.(check int) "retransmissions identical" s1.K.retransmissions
    s2.K.retransmissions;
  Alcotest.(check int) "timeouts identical" s1.K.timeouts_fired
    s2.K.timeouts_fired

let test_adaptive_recovers_faster () =
  (* The point of the estimator: after convergence, a lost packet is
     detected in ~1.5x RTT instead of the fixed 200 ms default.  Compare
     one scripted loss under both modes. *)
  let run cfg =
    let tb = Util.testbed ~kernel_config:cfg ~hosts:2 () in
    let k1 = kernel_of tb 1 in
    let server = Util.start_echo_server tb ~host:2 in
    let elapsed = ref 0 in
    Util.run_as_process tb ~host:1 (fun _ ->
        let msg = Msg.create () in
        (* Warm the estimator on a clean wire... *)
        for _ = 1 to 10 do
          Alcotest.check Util.status "warm" K.Ok (K.send k1 msg server)
        done;
        (* ...then lose the next request packet (frame 21). *)
        Vnet.Medium.set_fault tb.Vworkload.Testbed.medium
          (Vnet.Fault.drop_nth [ 21 ]);
        let t0 = Vsim.Engine.now (K.engine k1) in
        Alcotest.check Util.status "lossy exchange" K.Ok (K.send k1 msg server);
        elapsed := Vsim.Engine.now (K.engine k1) - t0);
    !elapsed
  in
  let fixed = run K.default_config in
  let adaptive = run adaptive_config in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive (%d ns) beats fixed (%d ns)" adaptive fixed)
    true
    (adaptive < fixed)

let suite =
  [
    Alcotest.test_case "estimator converges" `Quick test_estimator_converges;
    Alcotest.test_case "karn's rule" `Quick test_karn_rule;
    Alcotest.test_case "failure detector" `Quick test_failure_detector;
    Alcotest.test_case "success resets detector" `Quick
      test_success_resets_detector;
    Alcotest.test_case "determinism under loss" `Quick
      test_determinism_under_loss;
    Alcotest.test_case "adaptive recovers faster" `Quick
      test_adaptive_recovers_faster;
  ]
