(* End-to-end file service: diskless client against the V file server. *)

module K = Vkernel.Kernel

let kernel_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.kernel

(* Server on host 1 with the given files; returns (testbed, server). *)
let rig ?(files = [ ("prog", 65536); ("notes", 3000) ]) ?server_config
    ?latency () =
  let tb = Util.testbed ~hosts:2 () in
  let fs = Vworkload.Testbed.make_test_fs tb ?latency ~files () in
  let server =
    Vfs.Server.start (kernel_of tb 1) fs ?config:server_config ()
  in
  (tb, fs, server)

let connect k =
  match Vfs.Client.connect k () with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Vfs.Client.error_to_string e)

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "client: %s" (Vfs.Client.error_to_string e)

let test_open_read () =
  let tb, _, _ = rig () in
  let k2 = kernel_of tb 2 in
  Util.run_as_process tb ~host:2 (fun pid ->
      let mem = K.memory k2 pid in
      let conn = connect k2 in
      let h = get (Vfs.Client.open_file conn "notes") in
      Alcotest.(check int) "size" 3000 (get (Vfs.Client.file_size conn h));
      let n = get (Vfs.Client.read_page conn h ~block:2 ~buf:4096 ()) in
      Alcotest.(check int) "middle page full" 512 n;
      let got = Vkernel.Mem.read mem ~pos:4096 ~len:512 in
      let expect = Bytes.init 512 (fun i -> Util.pattern (1024 + i)) in
      Alcotest.(check bytes) "page content" expect got;
      (* Last page is short. *)
      let n = get (Vfs.Client.read_page conn h ~block:5 ~buf:4096 ()) in
      Alcotest.(check int) "tail page short" (3000 - (5 * 512)) n;
      get (Vfs.Client.close_file conn h))

let test_write_then_read_back () =
  let tb, _, _ = rig () in
  let k2 = kernel_of tb 2 in
  Util.run_as_process tb ~host:2 (fun pid ->
      let mem = K.memory k2 pid in
      let conn = connect k2 in
      let h = get (Vfs.Client.create_file conn "fresh") in
      Util.fill_pattern mem ~pos:0 ~len:512;
      let n = get (Vfs.Client.write_page conn h ~block:3 ~buf:0 ~count:512) in
      Alcotest.(check int) "written" 512 n;
      let n = get (Vfs.Client.read_page conn h ~block:3 ~buf:8192 ()) in
      Alcotest.(check int) "read back" 512 n;
      Util.check_pattern mem ~pos:8192 ~len:512
        ~name:"written data read back")

let test_basic_variants () =
  let tb, _, _ = rig () in
  let k2 = kernel_of tb 2 in
  Util.run_as_process tb ~host:2 (fun pid ->
      let mem = K.memory k2 pid in
      let conn = connect k2 in
      let h = get (Vfs.Client.create_file conn "basic") in
      Util.fill_pattern mem ~pos:0 ~len:512;
      let n =
        get (Vfs.Client.write_page_basic conn h ~block:0 ~buf:0 ~count:512)
      in
      Alcotest.(check int) "basic write" 512 n;
      let n = get (Vfs.Client.read_page_basic conn h ~block:0 ~buf:8192 ()) in
      Alcotest.(check int) "basic read" 512 n;
      Util.check_pattern mem ~pos:8192 ~len:512 ~name:"basic roundtrip")

let test_load_program () =
  let tb, _, _ = rig () in
  let k2 = kernel_of tb 2 in
  Util.run_as_process tb ~host:2 (fun pid ->
      let mem = K.memory k2 pid in
      let conn = connect k2 in
      let h = get (Vfs.Client.open_file conn "prog") in
      let n = get (Vfs.Client.load_program conn h ~buf:16384 ~max:65536) in
      Alcotest.(check int) "whole program" 65536 n;
      let got = Vkernel.Mem.read mem ~pos:16384 ~len:65536 in
      let expect = Bytes.init 65536 Util.pattern in
      Alcotest.(check bool) "program image exact" true (Bytes.equal got expect))

let test_errors () =
  let tb, _, _ = rig () in
  let k2 = kernel_of tb 2 in
  Util.run_as_process tb ~host:2 (fun _ ->
      let conn = connect k2 in
      (match Vfs.Client.open_file conn "no-such-file" with
      | Error (Vfs.Client.Server Vfs.Protocol.Snot_found) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Vfs.Client.error_to_string e)
      | Ok _ -> Alcotest.fail "opened a ghost");
      match Vfs.Client.read_page conn 42 ~block:0 ~buf:0 () with
      | Error (Vfs.Client.Server Vfs.Protocol.Sbad_handle) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Vfs.Client.error_to_string e)
      | Ok _ -> Alcotest.fail "read with a bad handle")

let test_delete () =
  let tb, _, _ = rig () in
  let k2 = kernel_of tb 2 in
  Util.run_as_process tb ~host:2 (fun _ ->
      let conn = connect k2 in
      get (Vfs.Client.delete_file conn "notes");
      match Vfs.Client.open_file conn "notes" with
      | Error (Vfs.Client.Server Vfs.Protocol.Snot_found) -> ()
      | _ -> Alcotest.fail "deleted file still opens")

let test_sequential_read_with_latency () =
  (* Table 6-2 structure: server read-ahead; per-page elapsed ~ disk
     latency + protocol constant. *)
  let server_config =
    { Vfs.Server.default_config with Vfs.Server.read_ahead = true }
  in
  let tb, fs, _ =
    rig ~files:[ ("seq", 20 * 512) ] ~server_config
      ~latency:(Vfs.Disk.Fixed (Vsim.Time.ms 10)) ()
  in
  Vfs.Fs.evict_cache fs;
  let k2 = kernel_of tb 2 in
  Util.run_as_process tb ~host:2 (fun _ ->
      let conn = connect k2 in
      let h = get (Vfs.Client.open_file conn "seq") in
      let t0 = Vsim.Engine.now (K.engine k2) in
      let total =
        get (Vfs.Client.read_sequential conn h ~buf:0 ~on_page:(fun _ _ -> ()))
      in
      Alcotest.(check int) "all bytes" (20 * 512) total;
      let per_page = (Vsim.Engine.now (K.engine k2) - t0) / 20 in
      let ms = Vsim.Time.to_float_ms per_page in
      (* ~ disk latency + small constant: between 10 and 14 ms. *)
      if ms < 10.0 || ms > 14.0 then
        Alcotest.failf "per-page %.2f ms out of band" ms)

let test_write_behind_faster () =
  let slow_disk = Vfs.Disk.Fixed (Vsim.Time.ms 20) in
  let run ~write_behind =
    let server_config = { Vfs.Server.default_config with Vfs.Server.write_behind } in
    let tb, _, _ = rig ~files:[ ("wb", 8 * 512) ] ~server_config ~latency:slow_disk () in
    let k2 = kernel_of tb 2 in
    let elapsed = ref 0 in
    Util.run_as_process tb ~host:2 (fun pid ->
        let mem = K.memory k2 pid in
        Util.fill_pattern mem ~pos:0 ~len:512;
        let conn = connect k2 in
        let h = get (Vfs.Client.open_file conn "wb") in
        let t0 = Vsim.Engine.now (K.engine k2) in
        let n = get (Vfs.Client.write_page conn h ~block:1 ~buf:0 ~count:512) in
        Alcotest.(check int) "wrote" 512 n;
        elapsed := Vsim.Engine.now (K.engine k2) - t0);
    !elapsed
  in
  let behind = run ~write_behind:true in
  let through = run ~write_behind:false in
  Alcotest.(check bool) "write-behind hides disk latency" true
    (behind + Vsim.Time.ms 15 < through)

let test_partial_page_count () =
  (* A read with count < block size returns exactly count bytes, from the
     right offset. *)
  let tb, _, _ = rig () in
  let k2 = kernel_of tb 2 in
  Util.run_as_process tb ~host:2 (fun pid ->
      let mem = K.memory k2 pid in
      let conn = connect k2 in
      let h = get (Vfs.Client.open_file conn "notes") in
      let n = get (Vfs.Client.read_page conn h ~block:1 ~buf:0 ~count:100 ()) in
      Alcotest.(check int) "partial count honoured" 100 n;
      let got = Vkernel.Mem.read mem ~pos:0 ~len:100 in
      let expect = Bytes.init 100 (fun i -> Util.pattern (512 + i)) in
      Alcotest.(check bytes) "partial content" expect got)

let test_exec_scan () =
  (* Remote execution returns the same checksum as fetching the pages and
     scanning locally. *)
  let tb, _, srv = rig ~files:[ ("scan", 32 * 512) ] () in
  let k2 = kernel_of tb 2 in
  Util.run_as_process tb ~host:2 (fun pid ->
      let mem = K.memory k2 pid in
      let conn = connect k2 in
      let h = get (Vfs.Client.open_file conn "scan") in
      let remote_sum = get (Vfs.Client.exec_scan conn h ~block:0 ~count:32) in
      (* Local scan over the same pages. *)
      let local_sum = ref 0 in
      for b = 0 to 31 do
        let n = get (Vfs.Client.read_page conn h ~block:b ~buf:0 ()) in
        let page = Vkernel.Mem.read mem ~pos:0 ~len:n in
        Bytes.iter
          (fun c -> local_sum := (!local_sum + Char.code c) land 0xFFFF_FFFF)
          page
      done;
      Alcotest.(check int) "checksums agree" !local_sum remote_sum);
  Alcotest.(check int) "one exec served" 1 (Vfs.Server.execs_served srv)

let test_exec_cheaper_on_the_wire () =
  (* The exec path generates 2 packets regardless of file size; the fetch
     path generates 2 per page. *)
  let tb, _, _ = rig ~files:[ ("scan", 32 * 512) ] () in
  let k2 = kernel_of tb 2 in
  let medium = tb.Vworkload.Testbed.medium in
  let exec_pkts = ref 0 and fetch_pkts = ref 0 in
  Util.run_as_process tb ~host:2 (fun _ ->
      let conn = connect k2 in
      let h = get (Vfs.Client.open_file conn "scan") in
      let before = (Vnet.Medium.stats medium).Vnet.Medium.attempted in
      ignore (get (Vfs.Client.exec_scan conn h ~block:0 ~count:32));
      let mid = (Vnet.Medium.stats medium).Vnet.Medium.attempted in
      for b = 0 to 31 do
        ignore (get (Vfs.Client.read_page conn h ~block:b ~buf:0 ()))
      done;
      let after = (Vnet.Medium.stats medium).Vnet.Medium.attempted in
      exec_pkts := mid - before;
      fetch_pkts := after - mid);
  Alcotest.(check int) "exec is one exchange" 2 !exec_pkts;
  Alcotest.(check int) "fetch is 2 packets/page" 64 !fetch_pkts

let test_read_ahead_sequential_only () =
  (* Regression: read-ahead used to prefetch after *every* read, paying a
     wasted disk access per request under random access.  Count raw disk
     reads with read-ahead on and off over the same block pattern: random
     access must cost exactly the same, sequential access exactly one
     more (the one-block prefetch that runs past the last read). *)
  let disk_reads ~read_ahead pattern =
    let server_config =
      { Vfs.Server.default_config with Vfs.Server.read_ahead }
    in
    let tb, fs, _ =
      rig ~files:[ ("ra", 16 * 512) ] ~server_config
        ~latency:(Vfs.Disk.Fixed (Vsim.Time.ms 5)) ()
    in
    Vfs.Fs.evict_cache fs;
    let k2 = kernel_of tb 2 in
    let dsk = Vfs.Fs.disk fs in
    let count = ref 0 in
    Util.run_as_process tb ~host:2 (fun _ ->
        let conn = connect k2 in
        let h = get (Vfs.Client.open_file conn "ra") in
        let before = Vfs.Disk.reads dsk in
        List.iter
          (fun b ->
            ignore (get (Vfs.Client.read_page conn h ~block:b ~buf:0 ())))
          pattern;
        count := Vfs.Disk.reads dsk - before);
    !count
  in
  (* No element is the successor of the one before it. *)
  let random = [ 9; 2; 11; 4; 13; 6; 1; 8 ] in
  Alcotest.(check int)
    "random access prefetches nothing"
    (disk_reads ~read_ahead:false random)
    (disk_reads ~read_ahead:true random);
  let sequential = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check int)
    "sequential access still prefetches"
    (disk_reads ~read_ahead:false sequential + 1)
    (disk_reads ~read_ahead:true sequential)

let test_handle_reclaim () =
  (* max_open = 4 gives three usable slots (handle 0 is never issued). *)
  let server_config =
    { Vfs.Server.default_config with Vfs.Server.max_open = 4 }
  in
  let tb, _, srv =
    rig ~files:[ ("a", 1024); ("b", 1024); ("c", 1024) ] ~server_config ()
  in
  let k1 = kernel_of tb 1 in
  let k2 = kernel_of tb 2 in
  (* A local client fills the whole table and never closes. *)
  let holder =
    K.spawn k1 ~name:"holder" (fun _ ->
        let conn = connect k1 in
        ignore (get (Vfs.Client.open_file conn "a"));
        ignore (get (Vfs.Client.open_file conn "b"));
        ignore (get (Vfs.Client.open_file conn "c")))
  in
  Vworkload.Testbed.run tb;
  (* While the holder lives its handles are untouchable: the table is
     full and a new open is refused. *)
  Util.run_as_process tb ~host:2 (fun _ ->
      let conn = connect k2 in
      match Vfs.Client.open_file conn "a" with
      | Error (Vfs.Client.Server Vfs.Protocol.Sno_space) -> ()
      | Error e ->
          Alcotest.failf "wrong error: %s" (Vfs.Client.error_to_string e)
      | Ok _ -> Alcotest.fail "open succeeded on a full table");
  Alcotest.(check int) "nothing reclaimed while the owner lives" 0
    (Vfs.Server.handles_reclaimed srv);
  (* Once the owner is destroyed, open pressure reclaims its slots. *)
  K.destroy k1 holder;
  Util.run_as_process tb ~host:2 (fun _ ->
      let conn = connect k2 in
      let h = get (Vfs.Client.open_file conn "b") in
      let n = get (Vfs.Client.read_page conn h ~block:0 ~buf:0 ()) in
      Alcotest.(check int) "read through the reclaimed slot" 512 n);
  Alcotest.(check int) "one slot reclaimed" 1
    (Vfs.Server.handles_reclaimed srv)

let test_multi_client_counts () =
  let tb = Util.testbed ~hosts:4 () in
  let fs = Vworkload.Testbed.make_test_fs tb ~files:[ ("f", 4096) ] () in
  let server = Vfs.Server.start (kernel_of tb 1) fs () in
  let done_count = ref 0 in
  for h = 2 to 4 do
    let k = kernel_of tb h in
    ignore
      (K.spawn k ~name:"client" (fun _ ->
           let conn = connect k in
           let fh = get (Vfs.Client.open_file conn "f") in
           for b = 0 to 7 do
             ignore (get (Vfs.Client.read_page conn fh ~block:b ~buf:0 ()))
           done;
           incr done_count))
  done;
  Vworkload.Testbed.run tb;
  Alcotest.(check int) "all clients done" 3 !done_count;
  Alcotest.(check int) "server read count" 24 (Vfs.Server.pages_read server)

let suite =
  [
    Alcotest.test_case "open + read" `Quick test_open_read;
    Alcotest.test_case "write then read back" `Quick test_write_then_read_back;
    Alcotest.test_case "basic (MoveTo/MoveFrom) variants" `Quick
      test_basic_variants;
    Alcotest.test_case "load program" `Quick test_load_program;
    Alcotest.test_case "error replies" `Quick test_errors;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "sequential read + disk latency" `Quick
      test_sequential_read_with_latency;
    Alcotest.test_case "write-behind" `Quick test_write_behind_faster;
    Alcotest.test_case "partial page count" `Quick test_partial_page_count;
    Alcotest.test_case "exec scan" `Quick test_exec_scan;
    Alcotest.test_case "exec wire cost" `Quick test_exec_cheaper_on_the_wire;
    Alcotest.test_case "read-ahead only when sequential" `Quick
      test_read_ahead_sequential_only;
    Alcotest.test_case "handle reclaim under open pressure" `Quick
      test_handle_reclaim;
    Alcotest.test_case "multi-client" `Quick test_multi_client_counts;
  ]
