(* Tests for the discrete-event engine, fibers and statistics. *)

let test_eventq_order () =
  let q = Vsim.Eventq.create () in
  let fired = ref [] in
  let add time tag =
    ignore (Vsim.Eventq.add q ~time (fun () -> fired := tag :: !fired))
  in
  add 30 "c";
  add 10 "a";
  add 20 "b";
  add 10 "a2";
  let rec drain () =
    match Vsim.Eventq.pop q with
    | Some (_, fn) ->
        fn ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string))
    "time order, FIFO within a time"
    [ "a"; "a2"; "b"; "c" ]
    (List.rev !fired)

let test_eventq_cancel () =
  let q = Vsim.Eventq.create () in
  let fired = ref 0 in
  let ev1 = Vsim.Eventq.add q ~time:10 (fun () -> incr fired) in
  let _ev2 = Vsim.Eventq.add q ~time:20 (fun () -> incr fired) in
  Vsim.Eventq.cancel ev1;
  Alcotest.(check bool) "cancelled" true (Vsim.Eventq.cancelled ev1);
  Alcotest.(check int) "live count" 1 (Vsim.Eventq.live_count q);
  Alcotest.(check (option int)) "next is 20" (Some 20) (Vsim.Eventq.next_time q);
  (match Vsim.Eventq.pop q with
  | Some (20, fn) -> fn ()
  | Some (t, _) -> Alcotest.failf "popped time %d" t
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "one fired" 1 !fired;
  Alcotest.(check bool) "now empty" true (Vsim.Eventq.is_empty q)

(* Model-based check: the heap pops in the same order as a sorted list. *)
let test_eventq_model =
  Util.qtest "eventq matches sorted-list model"
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Vsim.Eventq.create () in
      List.iter (fun t -> ignore (Vsim.Eventq.add q ~time:t ignore)) times;
      let popped = ref [] in
      let rec drain () =
        match Vsim.Eventq.pop q with
        | Some (t, _) ->
            popped := t :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !popped = List.sort compare times)

let test_engine_run_until () =
  let eng = Vsim.Engine.create () in
  let fired = ref [] in
  ignore (Vsim.Engine.after eng 100 (fun () -> fired := 100 :: !fired));
  ignore (Vsim.Engine.after eng 200 (fun () -> fired := 200 :: !fired));
  Vsim.Engine.run ~until:150 eng;
  Alcotest.(check (list int)) "only first" [ 100 ] (List.rev !fired);
  Alcotest.(check int) "clock at until" 150 (Vsim.Engine.now eng);
  Vsim.Engine.run eng;
  Alcotest.(check (list int)) "both" [ 100; 200 ] (List.rev !fired);
  Alcotest.(check int) "clock at last event" 200 (Vsim.Engine.now eng)

let test_engine_no_past () =
  let eng = Vsim.Engine.create () in
  ignore (Vsim.Engine.after eng 100 ignore);
  Vsim.Engine.run eng;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.at: time 50 is before now 100") (fun () ->
      ignore (Vsim.Engine.at eng 50 ignore))

let test_proc_sleep_join () =
  let eng = Vsim.Engine.create () in
  let log = ref [] in
  let p1 =
    Vsim.Proc.spawn eng ~name:"p1" (fun () ->
        Vsim.Proc.sleep 100;
        log := ("p1", Vsim.Engine.now eng) :: !log)
  in
  let _p2 =
    Vsim.Proc.spawn eng ~name:"p2" (fun () ->
        Vsim.Proc.join p1;
        log := ("p2", Vsim.Engine.now eng) :: !log)
  in
  Vsim.Engine.run eng;
  Alcotest.(check (list (pair string int)))
    "join woke after sleep"
    [ ("p1", 100); ("p2", 100) ]
    (List.rev !log);
  Alcotest.(check bool) "terminated" true (Vsim.Proc.terminated p1)

let test_proc_double_resume () =
  let eng = Vsim.Engine.create () in
  let resume_box = ref None in
  let (_ : Vsim.Proc.t) =
    Vsim.Proc.spawn eng (fun () ->
        Vsim.Proc.suspend ~reason:"test" (fun resume ->
            resume_box := Some resume))
  in
  Vsim.Engine.run eng;
  let resume = Option.get !resume_box in
  resume ();
  Alcotest.check_raises "double resume rejected"
    (Invalid_argument "Proc: double resume of proc") (fun () -> resume ())

let test_proc_exn_propagates () =
  let eng = Vsim.Engine.create () in
  let (_ : Vsim.Proc.t) =
    Vsim.Proc.spawn eng (fun () -> failwith "boom")
  in
  (try
     Vsim.Engine.run eng;
     Alcotest.fail "expected exception"
   with Failure m -> Alcotest.(check string) "message" "boom" m)

let test_determinism () =
  let trace seed =
    let eng = Vsim.Engine.create ~seed () in
    let log = Buffer.create 64 in
    for i = 1 to 5 do
      let delay = Vsim.Rng.int (Vsim.Engine.rng eng) 1000 in
      ignore
        (Vsim.Engine.after eng delay (fun () ->
             Buffer.add_string log
               (Printf.sprintf "%d@%d;" i (Vsim.Engine.now eng))))
    done;
    Vsim.Engine.run eng;
    Buffer.contents log
  in
  Alcotest.(check string) "same seed, same trace" (trace 42L) (trace 42L);
  Alcotest.(check bool)
    "different seed, different trace" true
    (trace 42L <> trace 43L)

let test_stat_acc () =
  let acc = Vsim.Stat.Acc.create () in
  List.iter (Vsim.Stat.Acc.add acc) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Vsim.Stat.Acc.count acc);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Vsim.Stat.Acc.mean acc);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Vsim.Stat.Acc.stddev acc);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Vsim.Stat.Acc.min acc);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Vsim.Stat.Acc.max acc)

let test_stat_series () =
  let s = Vsim.Stat.Series.create () in
  for i = 1 to 100 do
    Vsim.Stat.Series.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Vsim.Stat.Series.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Vsim.Stat.Series.percentile s 95.0);
  Alcotest.(check (float 1e-9)) "median after more adds" 50.0
    (Vsim.Stat.Series.median s);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Vsim.Stat.Series.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Vsim.Stat.Series.min s);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Vsim.Stat.Series.max s)

let test_rng_bounds =
  Util.qtest "rng int stays in bounds"
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Vsim.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Vsim.Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_rng_bernoulli () =
  let rng = Vsim.Rng.create 7L in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Vsim.Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  if Float.abs (p -. 0.3) > 0.01 then
    Alcotest.failf "bernoulli(0.3) frequency %.4f" p

let test_time_pp () =
  Alcotest.(check string) "ms" "3.18" (Format.asprintf "%a" Vsim.Time.pp_ms 3_180_000);
  Alcotest.(check string) "adaptive us" "2.50us" (Format.asprintf "%a" Vsim.Time.pp 2_500);
  Alcotest.(check int) "of_float_ms" 3_180_000 (Vsim.Time.of_float_ms 3.18)

let suite =
  [
    Alcotest.test_case "eventq order" `Quick test_eventq_order;
    Alcotest.test_case "eventq cancel" `Quick test_eventq_cancel;
    test_eventq_model;
    Alcotest.test_case "engine run until" `Quick test_engine_run_until;
    Alcotest.test_case "engine rejects past" `Quick test_engine_no_past;
    Alcotest.test_case "proc sleep and join" `Quick test_proc_sleep_join;
    Alcotest.test_case "proc double resume" `Quick test_proc_double_resume;
    Alcotest.test_case "proc exn propagates" `Quick test_proc_exn_propagates;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "stat acc" `Quick test_stat_acc;
    Alcotest.test_case "stat series" `Quick test_stat_series;
    test_rng_bounds;
    Alcotest.test_case "rng bernoulli" `Quick test_rng_bernoulli;
    Alcotest.test_case "time pretty-printing" `Quick test_time_pp;
  ]
