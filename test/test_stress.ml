(* Stress and fuzz tests: whole-system invariants under randomized load
   and faults. *)

module K = Vkernel.Kernel
module Msg = Vkernel.Msg

let kernel_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.kernel

(* Fuzz: random topology, random fault rates, random operation mix; every
   exchange must complete correctly and every transferred byte must be
   exact. *)
let test_ipc_fuzz =
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* drop = float_range 0.0 0.15 in
      let* corrupt = float_range 0.0 0.1 in
      let* clients = int_range 1 4 in
      return (seed, drop, corrupt, clients))
  in
  Util.qtest ~count:15 "randomized IPC fuzz: exactness under faults"
    (QCheck.make gen) (fun (seed, drop, corrupt, clients) ->
      (* Deep retry budget: at 25% combined loss the paper's N = 5 would
         legitimately declare failures (~0.44^6 per op); the invariant
         under test is exactness, not give-up policy. *)
      let fast =
        {
          K.default_config with
          K.retransmit_timeout_ns = Vsim.Time.ms 10;
          max_retries = 40;
        }
      in
      let tb =
        Util.testbed
          ~seed:(Int64.of_int (seed + 1))
          ~kernel_config:fast ~hosts:(clients + 1) ()
      in
      Vnet.Medium.set_fault tb.Vworkload.Testbed.medium
        {
          Vnet.Fault.none with
          Vnet.Fault.drop_prob = drop;
          corrupt_prob = corrupt;
        };
      let ks = kernel_of tb 1 in
      (* Server: echoes, and pushes a 2 KB pattern via MoveTo when the
         message carries a write segment. *)
      let server =
        K.spawn ks ~name:"server" (fun pid ->
            let mem = K.memory ks pid in
            Vkernel.Mem.write mem ~pos:0
              (Bytes.init 2048 (fun i -> Util.pattern (i * 11)));
            let msg = Msg.create () in
            let rec loop () =
              let src = K.receive ks msg in
              (match Msg.writable_segment msg with
              | Some (ptr, len) when len >= 2048 ->
                  ignore (K.move_to ks ~dst_pid:src ~dst:ptr ~src:0 ~count:2048)
              | Some _ | None -> ());
              Msg.set_u8 msg 4 (Msg.get_u8 msg 4 lxor 0x5A);
              ignore (K.reply ks msg src);
              loop ()
            in
            loop ())
      in
      let failures = ref 0 in
      let completed = ref 0 in
      for c = 1 to clients do
        let k = kernel_of tb (c + 1) in
        ignore
          (K.spawn k ~name:"fuzz-client" (fun pid ->
               let mem = K.memory k pid in
               let rng = Vsim.Rng.split (Vsim.Engine.rng tb.Vworkload.Testbed.eng) in
               for i = 1 to 12 do
                 let msg = Msg.create () in
                 let tag = (i + c) land 0x7F in
                 Msg.set_u8 msg 4 tag;
                 let bulk = Vsim.Rng.bool rng in
                 if bulk then
                   Msg.set_segment msg Msg.Write_only ~ptr:4096 ~len:4096;
                 (match K.send k msg server with
                 | K.Ok ->
                     incr completed;
                     if Msg.get_u8 msg 4 <> tag lxor 0x5A then incr failures;
                     if bulk then begin
                       let got = Vkernel.Mem.read mem ~pos:4096 ~len:2048 in
                       let expect =
                         Bytes.init 2048 (fun i -> Util.pattern (i * 11))
                       in
                       if not (Bytes.equal got expect) then incr failures
                     end
                 | _ -> incr failures)
               done))
      done;
      Vworkload.Testbed.run tb;
      !failures = 0 && !completed = clients * 12)

(* Alien pool invariant: however clients hammer a server, the alien count
   never exceeds the configured maximum. *)
let test_alien_bound () =
  let cfg =
    {
      K.default_config with
      K.max_aliens = 3;
      retransmit_timeout_ns = Vsim.Time.ms 5;
    }
  in
  let tb = Util.testbed ~kernel_config:cfg ~hosts:9 () in
  let ks = kernel_of tb 1 in
  let server =
    K.spawn ks ~name:"slow" (fun _ ->
        let msg = Msg.create () in
        let rec loop () =
          let src = K.receive ks msg in
          Vsim.Proc.sleep (Vsim.Time.ms 3);
          ignore (K.reply ks msg src);
          loop ()
        in
        loop ())
  in
  let done_ = ref 0 in
  for h = 2 to 9 do
    let k = kernel_of tb h in
    ignore
      (K.spawn k ~name:"c" (fun _ ->
           let msg = Msg.create () in
           for _ = 1 to 5 do
             ignore (K.send k msg server)
           done;
           incr done_))
  done;
  Vworkload.Testbed.run tb;
  Alcotest.(check int) "all clients eventually served" 8 !done_;
  let s = K.stats ks in
  Alcotest.(check bool) "pool pressure was exercised" true
    (s.K.alien_pool_full > 0)

(* Medium conservation: under heavy random contention, every transmit
   attempt is accounted for: delivered + dropped-by-fault + abandoned. *)
let test_medium_conservation () =
  let eng = Vsim.Engine.create ~seed:99L () in
  let medium = Vnet.Medium.create eng Vnet.Medium.config_3mb in
  Vnet.Medium.set_fault medium (Vnet.Fault.drop 0.1);
  let received = ref 0 in
  let stations = 12 in
  for a = 1 to stations do
    ignore (Vnet.Medium.attach medium ~addr:a ~rx:(fun _ -> incr received))
  done;
  let rng = Vsim.Rng.create 7L in
  let sent = ref 0 in
  for a = 1 to stations do
    for i = 1 to 20 do
      let dst = 1 + ((a + i) mod stations) in
      if dst <> a then begin
        incr sent;
        ignore
          (Vsim.Engine.after eng
             (Vsim.Rng.int rng (Vsim.Time.ms 50))
             (fun () ->
               Vnet.Medium.transmit medium
                 (Vnet.Frame.make ~src:a ~dst ~ethertype:0
                    (Bytes.make (64 + Vsim.Rng.int rng 512) 'x'))))
      end
    done
  done;
  Vsim.Engine.run eng;
  let s = Vnet.Medium.stats medium in
  Alcotest.(check int) "attempted = sent" !sent s.Vnet.Medium.attempted;
  Alcotest.(check int) "delivered + dropped + abandoned = sent" !sent
    (!received + s.Vnet.Medium.dropped + s.Vnet.Medium.excessive);
  Alcotest.(check bool) "contention actually happened" true
    (s.Vnet.Medium.collisions > 0)

(* Many concurrent MoveTos crossing between several hosts: all exact. *)
let test_concurrent_bulk () =
  let tb = Util.testbed ~hosts:6 () in
  let oks = ref 0 in
  (* Hosts 1-3 run movers; hosts 4-6 run granters pairing 1-4, 2-5, 3-6. *)
  for i = 1 to 3 do
    let km = kernel_of tb i and kg = kernel_of tb (i + 3) in
    let mover =
      Vkernel.Kernel.spawn km ~name:"mover" (fun pid ->
          let mem = Vkernel.Kernel.memory km pid in
          let msg = Msg.create () in
          let src = Vkernel.Kernel.receive km msg in
          Vkernel.Mem.write mem ~pos:0
            (Bytes.init 16384 (fun j -> Util.pattern (j * i)));
          (match
             Vkernel.Kernel.move_to km ~dst_pid:src ~dst:0 ~src:0 ~count:16384
           with
          | Vkernel.Kernel.Ok -> ()
          | st ->
              Alcotest.failf "mover %d: %s" i
                (Vkernel.Kernel.status_to_string st));
          ignore (Vkernel.Kernel.reply km msg src))
    in
    ignore
      (Vkernel.Kernel.spawn kg ~name:"granter" (fun pid ->
           let mem = Vkernel.Kernel.memory kg pid in
           let msg = Msg.create () in
           Msg.set_segment msg Msg.Read_write ~ptr:0 ~len:32768;
           Msg.set_no_piggyback msg;
           (match Vkernel.Kernel.send kg msg mover with
           | Vkernel.Kernel.Ok -> ()
           | st ->
               Alcotest.failf "granter %d: %s" i
                 (Vkernel.Kernel.status_to_string st));
           let got = Vkernel.Mem.read mem ~pos:0 ~len:16384 in
           let expect = Bytes.init 16384 (fun j -> Util.pattern (j * i)) in
           if Bytes.equal got expect then incr oks))
  done;
  Vworkload.Testbed.run tb;
  Alcotest.(check int) "all three transfers exact" 3 !oks

(* Determinism at system level: identical seeds give bit-identical
   statistics across a faulty multi-client run. *)
let test_system_determinism () =
  let run seed =
    let fast =
      { K.default_config with K.retransmit_timeout_ns = Vsim.Time.ms 10 }
    in
    let tb = Util.testbed ~seed ~kernel_config:fast ~hosts:3 () in
    Vnet.Medium.set_fault tb.Vworkload.Testbed.medium (Vnet.Fault.drop 0.2);
    let server = Util.start_echo_server tb ~host:1 in
    for h = 2 to 3 do
      let k = kernel_of tb h in
      ignore
        (K.spawn k ~name:"c" (fun _ ->
             let msg = Msg.create () in
             for _ = 1 to 20 do
               ignore (K.send k msg server)
             done))
    done;
    Vworkload.Testbed.run tb;
    ( Vsim.Engine.now tb.Vworkload.Testbed.eng,
      Format.asprintf "%a" K.pp_stats (K.stats (kernel_of tb 1)) )
  in
  let a = run 5L and b = run 5L and c = run 6L in
  Alcotest.(check bool) "same seed, same end time and stats" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c)

let suite =
  [
    test_ipc_fuzz;
    Alcotest.test_case "alien pool bound" `Quick test_alien_bound;
    Alcotest.test_case "medium conservation" `Quick test_medium_conservation;
    Alcotest.test_case "concurrent bulk transfers" `Quick
      test_concurrent_bulk;
    Alcotest.test_case "system determinism" `Quick test_system_determinism;
  ]
