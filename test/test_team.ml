(* Worker-team file service: dispatch correctness, contention behaviour
   and trace-level determinism of the multi-process server. *)

module K = Vkernel.Kernel
module R = Vworkload.Rigs

let kernel_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.kernel

let connect k =
  match Vfs.Client.connect k () with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Vfs.Client.error_to_string e)

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "client: %s" (Vfs.Client.error_to_string e)

let test_team_serves_clients () =
  (* Three clients against a 4-worker team: every page arrives intact and
     every request (3 opens + 24 reads) goes through the dispatcher. *)
  let tb = Util.testbed ~hosts:4 () in
  let fs = Vworkload.Testbed.make_test_fs tb ~files:[ ("f", 16 * 512) ] () in
  let config = { Vfs.Server.default_config with Vfs.Server.workers = 4 } in
  let server = Vfs.Server.start (kernel_of tb 1) fs ~config () in
  let done_count = ref 0 in
  for h = 2 to 4 do
    let k = kernel_of tb h in
    ignore
      (K.spawn k ~name:"client" (fun pid ->
           let mem = K.memory k pid in
           let conn = connect k in
           let fh = get (Vfs.Client.open_file conn "f") in
           for b = 0 to 7 do
             let n = get (Vfs.Client.read_page conn fh ~block:b ~buf:0 ()) in
             Alcotest.(check int) "page size" 512 n;
             let got = Vkernel.Mem.read mem ~pos:0 ~len:512 in
             let expect =
               Bytes.init 512 (fun i -> Util.pattern ((b * 512) + i))
             in
             if not (Bytes.equal got expect) then
               Alcotest.failf "host %d block %d corrupted through the team"
                 (K.host k) b
           done;
           incr done_count))
  done;
  Vworkload.Testbed.run tb;
  Alcotest.(check int) "all clients done" 3 !done_count;
  Alcotest.(check int) "team size" 4 (Vfs.Server.workers server);
  Alcotest.(check int) "server read count" 24 (Vfs.Server.pages_read server);
  Alcotest.(check int) "requests served" 27 (Vfs.Server.requests_served server);
  Alcotest.(check int) "every request dispatched" 27
    (Vfs.Server.dispatches server)

(* Run the contention rig with every trace event (timestamp + rendered
   event) captured into a buffer; returns the trace and the stats. *)
let traced_contention ~workers ~clients =
  let buf = Buffer.create (1 lsl 16) in
  Vsim.Engine.set_create_hook
    (Some
       (fun eng ->
         Vsim.Trace.attach eng (fun ts ev ->
             Buffer.add_string buf
               (Format.asprintf "%d %a@." ts Vsim.Event.pp ev))));
  Fun.protect
    ~finally:(fun () -> Vsim.Engine.set_create_hook None)
    (fun () ->
      let c = R.contention ~workers ~reads_per_client:10 ~clients () in
      (Buffer.contents buf, c))

let test_contention_deterministic () =
  (* Satellite: N clients against 1-worker and 4-worker servers must
     produce byte-identical traces across two runs, and the 4-worker mean
     latency must be strictly lower at N = 8. *)
  let run_twice w =
    let t1, c1 = traced_contention ~workers:w ~clients:8 in
    let t2, c2 = traced_contention ~workers:w ~clients:8 in
    Alcotest.(check bool)
      (Printf.sprintf "workers=%d traces byte-identical" w)
      true (String.equal t1 t2);
    Alcotest.(check bool)
      (Printf.sprintf "workers=%d trace non-empty" w)
      true
      (String.length t1 > 0);
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "workers=%d stats repeat" w)
      c1.R.c_mean_ms c2.R.c_mean_ms;
    c1
  in
  let c1 = run_twice 1 in
  let c4 = run_twice 4 in
  Alcotest.(check bool) "team mean latency strictly lower" true
    (c4.R.c_mean_ms < c1.R.c_mean_ms);
  Alcotest.(check int) "single worker never dispatches" 0 c1.R.c_dispatches;
  Alcotest.(check bool) "team dispatches" true (c4.R.c_dispatches > 0);
  Alcotest.(check int) "single worker never queues the disk" 0
    c1.R.c_disk_waits;
  Alcotest.(check bool) "team queues the disk" true (c4.R.c_disk_waits > 0)

let suite =
  [
    Alcotest.test_case "team serves clients" `Quick test_team_serves_clients;
    Alcotest.test_case "contention determinism + speedup" `Quick
      test_contention_deterministic;
  ]
