(* The program-execution subsystem: assembler, VM, loader. *)

module K = Vkernel.Kernel
module Msg = Vkernel.Msg

let kernel_of tb i = (Vworkload.Testbed.host tb i).Vworkload.Testbed.kernel

(* Run an assembled program in a fresh one-host world; return (outcome,
   console output). *)
let run_program ?config source =
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let img = Vexec.Asm.assemble_exn source in
  let out = ref None in
  let console = Buffer.create 64 in
  Util.run_as_process tb ~host:1 (fun _ ->
      out :=
        Some
          (Vexec.Vm.exec k ?config ~console:(Buffer.add_char console) img));
  match !out with
  | Some outcome -> (outcome, Buffer.contents console)
  | None -> Alcotest.fail "program did not run"

let check_exit ?config ~code source =
  match run_program ?config source with
  | Vexec.Vm.Exited c, _ when c = code -> ()
  | outcome, _ ->
      Alcotest.failf "expected exit(%d), got %a" code Vexec.Vm.pp_outcome
        outcome

let test_isa_roundtrip =
  Util.qtest "instruction encode/decode roundtrip"
    QCheck.(
      quad (int_bound 7) (int_bound 7) (int_bound 7)
        (int_range (-1000000) 1000000))
    (fun (a, b, c, imm) ->
      let instrs =
        [
          Vexec.Isa.Halt; Vexec.Isa.Loadi (a, imm); Vexec.Isa.Mov (a, b);
          Vexec.Isa.Add (a, b, c); Vexec.Isa.Div (a, b, c);
          Vexec.Isa.Ld (a, b, imm); Vexec.Isa.St (a, b, imm);
          Vexec.Isa.Jmp (abs imm); Vexec.Isa.Jz (a, abs imm);
          Vexec.Isa.Blt (a, b, abs imm); Vexec.Isa.Call (abs imm);
          Vexec.Isa.Ret; Vexec.Isa.Sys (abs imm land 0xFF);
        ]
      in
      List.for_all
        (fun i ->
          match Vexec.Isa.decode (Vexec.Isa.encode i) ~pos:0 with
          | Ok i' -> i = i'
          | Error _ -> false)
        instrs)

let test_image_roundtrip () =
  let img =
    {
      Vexec.Image.code = Bytes.concat Bytes.empty
        [ Vexec.Isa.encode Vexec.Isa.Halt ];
      data = Bytes.of_string "some initialized data";
      bss = 128;
      entry = 0;
    }
  in
  match Vexec.Image.of_bytes (Vexec.Image.to_bytes img) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok img' ->
      Alcotest.(check bytes) "code" img.Vexec.Image.code img'.Vexec.Image.code;
      Alcotest.(check bytes) "data" img.Vexec.Image.data img'.Vexec.Image.data;
      Alcotest.(check int) "bss" 128 img'.Vexec.Image.bss

let test_arithmetic () =
  check_exit ~code:42 {|
        loadi r1, 0
        loadi r2, 7
        loadi r3, 6
loop:   jz    r3, done
        add   r1, r1, r2
        loadi r4, 1
        sub   r3, r3, r4
        jmp   loop
done:   sys   0            ; exit(r1 = 42)
|}

let test_call_ret_fib () =
  (* Recursive fibonacci(10) = 55, exercising the stack. *)
  check_exit ~code:55
    {|
        .entry main
; fib(n): n in r1, result in r1; clobbers r2, r3
fib:    loadi r2, 2
        blt   r1, r2, base
        loadi r2, 1
        sub   r1, r1, r2       ; n-1
        sub   sp, sp, r2       ; poor man's push: make room (4 bytes)
        sub   sp, sp, r2
        sub   sp, sp, r2
        sub   sp, sp, r2
        st    [sp+0], r1       ; save n-1
        call  fib              ; r1 = fib(n-1)
        ld    r3, [sp+0]       ; r3 = n-1
        st    [sp+0], r1       ; save fib(n-1)
        loadi r2, 1
        sub   r1, r3, r2       ; n-2
        call  fib              ; r1 = fib(n-2)
        ld    r3, [sp+0]       ; fib(n-1)
        add   r1, r1, r3
        loadi r2, 4
        add   sp, sp, r2       ; pop
base:   ret
main:   loadi r1, 10
        call  fib
        sys   0
|}

let test_alu_semantics () =
  (* Bitwise and shift operations, plus 32-bit signed wraparound. *)
  check_exit ~code:1 {|
        loadi r1, 0x0F0F
        loadi r2, 0x00FF
        and   r3, r1, r2      ; 0x000F
        loadi r4, 0x000F
        xor   r5, r3, r4      ; 0
        jnz   r5, bad
        or    r5, r3, r2      ; 0x00FF
        loadi r4, 0x00FF
        xor   r5, r5, r4
        jnz   r5, bad
        loadi r4, 4
        shl   r5, r3, r4      ; 0xF0
        loadi r4, 0xF0
        xor   r5, r5, r4
        jnz   r5, bad
        loadi r4, 4
        shr   r5, r3, r4      ; 0
        jnz   r5, bad
        loadi r1, 1
        sys   0
bad:    loadi r1, 99
        sys   0
|};
  (* Signed comparison and wraparound: -1 < 1; INT32_MAX + 1 = INT32_MIN. *)
  check_exit ~code:1 {|
        loadi r1, -1
        loadi r2, 1
        blt   r1, r2, ok1
        jmp   bad
ok1:    loadi r1, 0x7FFFFFFF
        loadi r2, 1
        add   r3, r1, r2      ; wraps to INT32_MIN
        loadi r4, 0
        blt   r3, r4, ok2     ; negative after wraparound
        jmp   bad
ok2:    loadi r1, 1
        sys   0
bad:    loadi r1, 99
        sys   0
|}

let test_asm_literals () =
  (* Hex, char and escaped-char literals; comments containing ';'. *)
  check_exit ~code:97 {|
        loadi r1, 'a'        ; 'a' is 97; this comment has a ; in it
        loadi r2, 0x61
        xor   r3, r1, r2
        jnz   r3, bad
        loadi r4, '\n'
        loadi r5, 10
        xor   r3, r4, r5
        jnz   r3, bad
        sys   0              ; exit('a')
bad:    loadi r1, 1
        sys   0
|}

let test_data_and_strings () =
  (* Sum the bytes of a string from the data section. *)
  let outcome, console = run_program {|
        .entry main
msg:    .ascii "AB\n"
len:    .word 3
main:   loadi r1, @msg
        ld    r2, [r6+@len]   ; r6 = 0
        loadi r3, 0           ; sum
loop:   jz    r2, print
        ldb   r4, [r1+0]
        add   r3, r3, r4
        loadi r5, 1
        add   r1, r1, r5
        sub   r2, r2, r5
        jmp   loop
print:  ldb   r1, [r6+@msg]   ; print first char
        sys   1
        mov   r1, r3
        sys   0               ; exit(65+66+10 = 141)
|} in
  (match outcome with
  | Vexec.Vm.Exited 141 -> ()
  | o -> Alcotest.failf "got %a" Vexec.Vm.pp_outcome o);
  Alcotest.(check string) "console" "A" console

let test_console_hello () =
  let _, console = run_program {|
        .entry main
hello:  .ascii "hello\n"
        .word 0
main:   loadi r2, @hello
loop:   ldb   r1, [r2+0]
        jz    r1, done
        sys   1
        loadi r3, 1
        add   r2, r2, r3
        jmp   loop
done:   halt
|} in
  Alcotest.(check string) "console output" "hello\n" console

let test_bss () =
  check_exit ~code:7 {|
        .entry main
buf:    .bss 64
main:   loadi r1, @buf
        ld    r2, [r1+0]      ; bss reads zero
        jnz   r2, bad
        loadi r3, 7
        st    [r1+32], r3
        ld    r4, [r1+32]
        mov   r1, r4
        sys   0
bad:    loadi r1, 99
        sys   0
|}

let test_faults () =
  (match run_program {|
        loadi r1, 1
        loadi r2, 0
        div   r3, r1, r2
|} with
  | Vexec.Vm.Fault { reason; _ }, _ ->
      Alcotest.(check bool) "div fault" true
        (String.length reason > 0)
  | o, _ -> Alcotest.failf "expected fault, got %a" Vexec.Vm.pp_outcome o);
  (match run_program {|
        loadi r1, -100
        ld    r2, [r1+0]
|} with
  | Vexec.Vm.Fault _, _ -> ()
  | o, _ -> Alcotest.failf "expected fault, got %a" Vexec.Vm.pp_outcome o);
  match run_program {|
        jmp 4096
|} with
  | Vexec.Vm.Fault _, _ -> ()
  | o, _ -> Alcotest.failf "expected fault, got %a" Vexec.Vm.pp_outcome o

let test_fuel () =
  let config = { Vexec.Vm.default_config with Vexec.Vm.max_steps = 1000 } in
  match run_program ~config {|
loop:   jmp loop
|} with
  | Vexec.Vm.Out_of_fuel, _ -> ()
  | o, _ -> Alcotest.failf "expected out-of-fuel, got %a" Vexec.Vm.pp_outcome o

let test_cpu_charged () =
  (* Interpretation costs simulated processor time. *)
  let tb = Util.testbed ~hosts:1 () in
  let k = kernel_of tb 1 in
  let img = Vexec.Asm.assemble_exn {|
        loadi r1, 1000
        loadi r2, 1
loop:   sub   r1, r1, r2
        jnz   r1, loop
        halt
|} in
  let cpu = (Vworkload.Testbed.host tb 1).Vworkload.Testbed.cpu in
  let busy0 = ref 0 and busy1 = ref 0 in
  Util.run_as_process tb ~host:1 (fun _ ->
      busy0 := Vhw.Cpu.busy_ns cpu;
      ignore (Vexec.Vm.exec k img);
      busy1 := Vhw.Cpu.busy_ns cpu);
  let spent = !busy1 - !busy0 in
  (* ~2003 instructions at 2 us each. *)
  Alcotest.(check bool) "cpu time charged" true
    (spent > Vsim.Time.ms 3 && spent < Vsim.Time.ms 6)

let test_asm_errors () =
  let bad = [
    "loadi r9, 1", "register";
    "jmp nowhere", "undefined";
    "bogus r1", "instruction";
    "x: .word 1\nx: .word 2", "duplicate";
    "add r1, r2", "three registers";
  ] in
  List.iter
    (fun (src, _hint) ->
      match Vexec.Asm.assemble src with
      | Ok _ -> Alcotest.failf "assembled bad source %S" src
      | Error e ->
          Alcotest.(check bool) "error mentions a line" true
            (String.length e > 6))
    bad

let test_syscall_ipc () =
  (* An interpreted program finds the echo server through GetPid and does
     a real remote message exchange. *)
  let tb = Util.testbed ~hosts:2 () in
  let k1 = kernel_of tb 1 and k2 = kernel_of tb 2 in
  let (_ : Vkernel.Pid.t) =
    K.spawn k1 ~name:"incr-server" (fun pid ->
        K.set_pid k1 ~logical_id:5 pid K.Any;
        let msg = Msg.create () in
        let rec loop () =
          let src = K.receive k1 msg in
          Msg.set_u8 msg 4 (Msg.get_u8 msg 4 + 1);
          ignore (K.reply k1 msg src);
          loop ()
        in
        loop ())
  in
  let img = Vexec.Asm.assemble_exn {|
        .entry main
msgbuf: .bss 32
main:   loadi r1, 5
        sys   6              ; get_pid(5) -> r1
        jz    r1, fail
        mov   r2, r1         ; server pid
        loadi r1, @msgbuf
        loadi r3, 41
        stb   [r1+4], r3     ; message byte 4 = 41
        sys   3              ; send(msgbuf, r2); r1 = status
        jnz   r1, fail
        loadi r1, @msgbuf
        ldb   r1, [r1+4]     ; reply byte 4 = 42
        sys   0
fail:   loadi r1, 255
        sys   0
|} in
  let outcome = ref None in
  let (_ : Vkernel.Pid.t) =
    K.spawn k2 ~name:"interp" (fun _ ->
        Vsim.Proc.sleep (Vsim.Time.ms 5);
        outcome := Some (Vexec.Vm.exec k2 img))
  in
  Vworkload.Testbed.run tb;
  match !outcome with
  | Some (Vexec.Vm.Exited 42) -> ()
  | Some o -> Alcotest.failf "got %a" Vexec.Vm.pp_outcome o
  | None -> Alcotest.fail "no outcome"

let test_loader_end_to_end () =
  (* Assemble a program, store its image on the file server, and run it
     on a diskless workstation via the two-read loading pattern. *)
  let img = Vexec.Asm.assemble_exn {|
        .entry main
text:   .ascii "ok\n"
        .word 0
main:   loadi r2, @text
loop:   ldb   r1, [r2+0]
        jz    r1, done
        sys   1
        loadi r3, 1
        add   r2, r2, r3
        jmp   loop
done:   loadi r1, 7
        sys   0
|} in
  let file = Vexec.Image.to_bytes img in
  let tb = Util.testbed ~hosts:2 () in
  let fs = Vworkload.Testbed.make_test_fs tb ~files:[] () in
  Vworkload.Testbed.run_proc tb ~name:"install" (fun () ->
      let inum = Result.get_ok (Vfs.Fs.create fs "ok.prog") in
      match Vfs.Fs.write fs ~inum ~pos:0 file with
      | Ok () -> ()
      | Error e -> Alcotest.failf "install: %s" (Vfs.Fs.error_to_string e));
  let (_ : Vfs.Server.t) = Vfs.Server.start (kernel_of tb 1) fs () in
  let k2 = kernel_of tb 2 in
  let console = Buffer.create 16 in
  let outcome = ref None in
  Util.run_as_process tb ~host:2 (fun _ ->
      let conn =
        match Vfs.Client.connect k2 () with
        | Ok c -> c
        | Error e -> Alcotest.failf "connect: %s" (Vfs.Client.error_to_string e)
      in
      match
        Vexec.Loader.load_and_run k2 ~conn ~name:"ok.prog"
          ~console:(Buffer.add_char console) ()
      with
      | Ok o -> outcome := Some o
      | Error e -> Alcotest.failf "loader: %s" (Vexec.Loader.error_to_string e));
  Alcotest.(check string) "console" "ok\n" (Buffer.contents console);
  match !outcome with
  | Some (Vexec.Vm.Exited 7) -> ()
  | Some o -> Alcotest.failf "got %a" Vexec.Vm.pp_outcome o
  | None -> Alcotest.fail "no outcome"

let test_loader_missing_and_garbage () =
  let tb = Util.testbed ~hosts:2 () in
  let fs = Vworkload.Testbed.make_test_fs tb ~files:[ ("junk", 2048) ] () in
  let (_ : Vfs.Server.t) = Vfs.Server.start (kernel_of tb 1) fs () in
  let k2 = kernel_of tb 2 in
  Util.run_as_process tb ~host:2 (fun _ ->
      let conn = Result.get_ok (Vfs.Client.connect k2 ()) in
      (match Vexec.Loader.load k2 ~conn ~name:"absent" with
      | Error (Vexec.Loader.Client _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Vexec.Loader.error_to_string e)
      | Ok _ -> Alcotest.fail "loaded a ghost");
      match Vexec.Loader.load k2 ~conn ~name:"junk" with
      | Error (Vexec.Loader.Bad_image _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Vexec.Loader.error_to_string e)
      | Ok _ -> Alcotest.fail "loaded garbage")

let suite =
  [
    test_isa_roundtrip;
    Alcotest.test_case "image roundtrip" `Quick test_image_roundtrip;
    Alcotest.test_case "arithmetic loop" `Quick test_arithmetic;
    Alcotest.test_case "ALU and signedness" `Quick test_alu_semantics;
    Alcotest.test_case "assembler literals" `Quick test_asm_literals;
    Alcotest.test_case "call/ret fibonacci" `Quick test_call_ret_fib;
    Alcotest.test_case "data and strings" `Quick test_data_and_strings;
    Alcotest.test_case "console hello" `Quick test_console_hello;
    Alcotest.test_case "bss" `Quick test_bss;
    Alcotest.test_case "faults" `Quick test_faults;
    Alcotest.test_case "fuel" `Quick test_fuel;
    Alcotest.test_case "cpu charged" `Quick test_cpu_charged;
    Alcotest.test_case "assembler errors" `Quick test_asm_errors;
    Alcotest.test_case "syscall IPC" `Quick test_syscall_ipc;
    Alcotest.test_case "loader end-to-end" `Quick test_loader_end_to_end;
    Alcotest.test_case "loader errors" `Quick test_loader_missing_and_garbage;
  ]
