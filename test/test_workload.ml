(* Workload library: distributions, recorder, testbed. *)

let test_think_distributions () =
  let rng = Vsim.Rng.create 11L in
  Alcotest.(check int) "zero" 0 (Vworkload.Think.sample Vworkload.Think.Zero rng);
  Alcotest.(check int) "constant" 500
    (Vworkload.Think.sample (Vworkload.Think.Constant 500) rng);
  for _ = 1 to 1000 do
    let v =
      Vworkload.Think.sample (Vworkload.Think.Uniform (100, 200)) rng
    in
    if v < 100 || v >= 200 then Alcotest.failf "uniform out of range: %d" v
  done;
  let acc = Vsim.Stat.Acc.create () in
  for _ = 1 to 20_000 do
    Vsim.Stat.Acc.add acc
      (float_of_int
         (Vworkload.Think.sample (Vworkload.Think.Exponential 1000) rng))
  done;
  let mean = Vsim.Stat.Acc.mean acc in
  if Float.abs (mean -. 1000.0) > 50.0 then
    Alcotest.failf "exponential mean %.1f" mean

let test_recorder () =
  let eng = Vsim.Engine.create () in
  let rec_ = Vworkload.Recorder.create eng ~warmup:(Vsim.Time.ms 10) () in
  let (_ : Vsim.Proc.t) =
    Vsim.Proc.spawn eng (fun () ->
        (* During warmup: discarded. *)
        Vworkload.Recorder.measure rec_ (fun () -> Vsim.Proc.sleep (Vsim.Time.ms 5));
        Vsim.Proc.sleep (Vsim.Time.ms 10);
        for _ = 1 to 10 do
          Vworkload.Recorder.measure rec_ (fun () ->
              Vsim.Proc.sleep (Vsim.Time.ms 2))
        done)
  in
  Vsim.Engine.run eng;
  Alcotest.(check int) "warmup discarded" 10 (Vworkload.Recorder.count rec_);
  Alcotest.(check (float 0.01)) "mean" 2.0 (Vworkload.Recorder.mean_ms rec_);
  Alcotest.(check (float 0.01)) "p95" 2.0 (Vworkload.Recorder.p95_ms rec_);
  let thr = Vworkload.Recorder.throughput_per_sec rec_ in
  if Float.abs (thr -. 500.0) > 5.0 then
    Alcotest.failf "throughput %.1f ops/s" thr

let test_testbed_fs () =
  let tb = Util.testbed ~hosts:1 () in
  let fs =
    Vworkload.Testbed.make_test_fs tb ~files:[ ("a", 100); ("b", 2048) ] ()
  in
  Alcotest.(check bool) "a exists" true (Vfs.Fs.lookup fs "a" <> None);
  let inum = Option.get (Vfs.Fs.lookup fs "b") in
  let ok = ref false in
  Vworkload.Testbed.run_proc tb (fun () ->
      match Vfs.Fs.read fs ~inum ~pos:0 ~len:2048 with
      | Ok data ->
          let expect = Bytes.init 2048 Vworkload.Testbed.pattern_byte in
          ok := Bytes.equal data expect
      | Error e -> Alcotest.failf "read: %s" (Vfs.Fs.error_to_string e));
  Alcotest.(check bool) "content matches pattern" true !ok

let test_testbed_hosts () =
  let tb = Util.testbed ~hosts:3 () in
  Alcotest.(check int) "addresses are 1-based"
    2
    (Vworkload.Testbed.host tb 2).Vworkload.Testbed.addr;
  Alcotest.check_raises "bad index"
    (Invalid_argument "Testbed.host: no host 9") (fun () ->
      ignore (Vworkload.Testbed.host tb 9))

let suite =
  [
    Alcotest.test_case "think distributions" `Quick test_think_distributions;
    Alcotest.test_case "recorder" `Quick test_recorder;
    Alcotest.test_case "testbed fs" `Quick test_testbed_fs;
    Alcotest.test_case "testbed hosts" `Quick test_testbed_hosts;
  ]
