(* Shared helpers for the test suite. *)

let check_ms ~tolerance name expected actual_ns =
  let actual = Vsim.Time.to_float_ms actual_ns in
  if Float.abs (actual -. expected) > tolerance then
    Alcotest.failf "%s: expected %.3f ms (+/- %.3f), got %.3f ms" name
      expected tolerance actual

let testbed ?seed ?medium_config ?cpu_model ?kernel_config ?(hosts = 2) () =
  Vworkload.Testbed.create ?seed ?medium_config ?cpu_model ?kernel_config
    ~hosts ()

(* Run [f] as a kernel process on the given host, drive the simulation to
   quiescence, and fail the test if [f] never completed. *)
let run_as_process (tb : Vworkload.Testbed.t) ~host f =
  let k = (Vworkload.Testbed.host tb host).Vworkload.Testbed.kernel in
  let completed = ref false in
  let (_ : Vkernel.Pid.t) =
    Vkernel.Kernel.spawn k ~name:"test-main" (fun pid ->
        f pid;
        completed := true)
  in
  Vworkload.Testbed.run tb;
  if not !completed then Alcotest.fail "test process did not run to completion"

(* A standard echo server: receives, increments byte 4 of the message,
   replies. *)
let start_echo_server (tb : Vworkload.Testbed.t) ~host =
  let k = (Vworkload.Testbed.host tb host).Vworkload.Testbed.kernel in
  Vkernel.Kernel.spawn k ~name:"echo" (fun _ ->
      let msg = Vkernel.Msg.create () in
      let rec loop () =
        let src = Vkernel.Kernel.receive k msg in
        Vkernel.Msg.set_u8 msg 4 ((Vkernel.Msg.get_u8 msg 4 + 1) land 0xFF);
        (match Vkernel.Kernel.reply k msg src with
        | Vkernel.Kernel.Ok -> ()
        | st ->
            Alcotest.failf "echo server reply failed: %s"
              (Vkernel.Kernel.status_to_string st));
        loop ()
      in
      loop ())

let pattern = Vworkload.Testbed.pattern_byte

let fill_pattern mem ~pos ~len =
  Vkernel.Mem.write mem ~pos (Bytes.init len (fun i -> pattern (pos + i)))

let check_pattern mem ~pos ~len ~name =
  let got = Vkernel.Mem.read mem ~pos ~len in
  let expect = Bytes.init len (fun i -> pattern (pos + i)) in
  if not (Bytes.equal got expect) then
    Alcotest.failf "%s: data mismatch at %d (+%d)" name pos len

let status = Alcotest.testable Vkernel.Kernel.pp_status ( = )

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
